"""Quickstart: build a knowledge base from transistor datasheets in ~60 lines.

This walks the full Fonduer pipeline on the ELECTRONICS domain (the paper's
running example, Figure 1):

1. generate/parse a small corpus of datasheet-style documents,
2. define matchers for the two mention types and a throttler,
3. write a handful of labeling functions over the data model,
4. run candidate generation → featurization → data programming → learning →
   classification, and
5. print the resulting KB and its quality against the ground truth.

Run with:  python examples/quickstart.py

For corpora that do not fit in memory, the same pipeline runs out-of-core
through the sharded corpus store (docs/SCALING.md), driven by the CLI —
including training, which streams mini-batches from the shard slabs with
per-epoch checkpoint/resume (docs/LEARNING.md)::

    python -m repro gen-corpus --dataset electronics --n-docs 20 --out corpus/
    python -m repro train --dataset electronics --corpus-dir corpus/ \\
        --workdir work/ --shard-size 4 --max-resident-shards 2 --epochs 20

Killing the streaming run and re-invoking resumes from the last completed
shard × stage (or epoch) checkpoint; its outputs are byte-identical to
`pipeline.run`.
"""

from repro import FonduerConfig, FonduerPipeline, load_dataset
from repro.learning.registry import available_models


def main() -> None:
    # 1. Corpus + ground truth.  `load_dataset` bundles the synthetic corpus with
    #    matchers, throttlers and a labeling-function pool; a real application
    #    would define those pieces itself (see examples/electronics_datasheets.py).
    dataset = load_dataset("electronics", n_docs=16, seed=0)
    documents = dataset.parse_documents()
    print(f"Parsed {len(documents)} documents "
          f"({sum(1 for d in documents for _ in d.sentences())} sentences).")
    print(f"Target relation: {dataset.schema.to_sql()}\n")

    # 2-4. The pipeline wires Phase 1-3 together.  The discriminative model is
    #    selected by name through the registry — swap "logistic" for "lstm"
    #    (the paper's multimodal LSTM) or any other registered model.
    print(f"Registered models: {', '.join(available_models())}")
    pipeline = FonduerPipeline(
        schema=dataset.schema,
        matchers=dataset.matchers,
        labeling_functions=dataset.labeling_functions,
        throttlers=dataset.throttlers,
        config=FonduerConfig(threshold=0.5, model="logistic"),
    )
    result = pipeline.run(documents, gold=dataset.gold_entries)

    # 5. Inspect the output knowledge base.
    print(f"Candidates considered: {result.n_candidates} "
          f"(raw: {result.extraction.n_raw_candidates}, "
          f"throttled away: {result.extraction.n_throttled})")
    print(f"KB entries extracted:  {result.kb.size()}")
    print("\nSample of the output KB:")
    for part, current in sorted(result.kb.entries(dataset.schema.name))[:10]:
        print(f"  HasCollectorCurrent({part!r}, {current!r})")

    metrics = result.metrics
    print(f"\nEnd-to-end quality vs ground truth: "
          f"P={metrics.precision:.2f} R={metrics.recall:.2f} F1={metrics.f1:.2f}")


if __name__ == "__main__":
    main()
