"""GENOMICS walkthrough: XML-native documents and comparison to curated KBs.

The GWAS domain illustrates two things the paper emphasizes:

* every candidate is cross-context (the phenotype lives in the article title,
  the SNPs and p-values in results tables), so sentence- or table-scoped
  extraction finds nothing at all (Table 2, GEN row);
* the output can be compared against expert-curated knowledge bases à la GWAS
  Central / GWAS Catalog, measuring coverage, accuracy and newly contributed
  correct entries (Table 3).

Run with:  python examples/genomics_gwas.py
"""

from repro import FonduerPipeline, load_dataset
from repro.baselines import EnsembleBaseline, TableIEBaseline, TextIEBaseline
from repro.datasets.existing_kbs import build_existing_kb
from repro.evaluation import compare_knowledge_bases


def main() -> None:
    dataset = load_dataset("genomics", n_docs=16, seed=5)
    documents = dataset.parse_documents()
    matchers = {t: dataset.matchers[t] for t in dataset.schema.entity_types}

    # 1. The oracle baselines cannot produce a single full tuple.
    print("Oracle upper bounds (candidate-generation recall, perfect precision):")
    for baseline in (
        TextIEBaseline(dataset.schema.name, matchers),
        TableIEBaseline(dataset.schema.name, matchers),
        EnsembleBaseline(dataset.schema.name, matchers),
    ):
        metrics = baseline.evaluate_oracle(documents, dataset.gold_entries).metrics
        print(f"  {baseline.name:10s} recall={metrics.recall:.2f} F1={metrics.f1:.2f}")

    # 2. Fonduer extracts the document-level relation.
    pipeline = FonduerPipeline(
        schema=dataset.schema,
        matchers=dataset.matchers,
        labeling_functions=dataset.labeling_functions,
        throttlers=dataset.throttlers,
    )
    result = pipeline.run(documents, gold=dataset.gold_entries)
    print(f"\nFonduer: {result.kb.size()} associations extracted, "
          f"P={result.metrics.precision:.2f} R={result.metrics.recall:.2f} "
          f"F1={result.metrics.f1:.2f}")
    print("Sample associations:")
    for rsid, phenotype in sorted(result.kb.entries(dataset.schema.name))[:8]:
        print(f"  {rsid}  →  {phenotype}")

    # 3. Compare against a curated KB with incomplete coverage (Table 3 style).
    truth = dataset.corpus.gold_tuples()
    curated = build_existing_kb(truth, coverage_of_truth=0.6, foreign_fraction=0.05, seed=2)
    fonduer_tuples = {entity_tuple for _, entity_tuple in result.extracted_entries}
    comparison = compare_knowledge_bases(fonduer_tuples, curated, truth)
    print("\nComparison against a curated KB (GWAS-Catalog-style):")
    for key, value in comparison.as_dict().items():
        print(f"  {key:28s} {value:.2f}" if isinstance(value, float) else f"  {key:28s} {value}")


if __name__ == "__main__":
    main()
