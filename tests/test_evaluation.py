"""Tests for evaluation metrics and the existing-KB comparison."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.evaluation.kb_compare import compare_knowledge_bases
from repro.evaluation.metrics import (
    evaluate_binary,
    evaluate_entity_tuples,
    f1_score,
    precision_recall_f1,
)


class TestPrecisionRecallF1:
    def test_perfect(self):
        result = precision_recall_f1(tp=10, fp=0, fn=0)
        assert result.precision == result.recall == result.f1 == 1.0

    def test_zero_safe(self):
        result = precision_recall_f1(tp=0, fp=0, fn=0)
        assert result.precision == result.recall == result.f1 == 0.0

    def test_known_values(self):
        result = precision_recall_f1(tp=6, fp=2, fn=4)
        assert result.precision == pytest.approx(0.75)
        assert result.recall == pytest.approx(0.6)
        assert result.f1 == pytest.approx(2 * 0.75 * 0.6 / 1.35)

    def test_as_dict(self):
        assert precision_recall_f1(1, 1, 1).as_dict()["tp"] == 1

    def test_f1_helper(self):
        assert f1_score(0.0, 0.0) == 0.0
        assert f1_score(1.0, 1.0) == 1.0

    @given(st.integers(0, 100), st.integers(0, 100), st.integers(0, 100))
    def test_f1_between_precision_and_recall(self, tp, fp, fn):
        result = precision_recall_f1(tp, fp, fn)
        low, high = sorted([result.precision, result.recall])
        assert low - 1e-9 <= result.f1 <= high + 1e-9


class TestEvaluateBinary:
    def test_basic(self):
        result = evaluate_binary([1, 1, -1, -1], [1, -1, -1, 1])
        assert result.true_positives == 1
        assert result.false_positives == 1
        assert result.false_negatives == 1

    def test_boolean_inputs(self):
        result = evaluate_binary(np.array([True, False]), np.array([True, True]))
        assert result.recall == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_binary([1], [1, -1])


class TestEvaluateEntityTuples:
    def test_document_scoped(self):
        gold = {("doc1", ("a", "1")), ("doc2", ("b", "2"))}
        extracted = {("doc1", ("a", "1")), ("doc1", ("b", "2"))}
        result = evaluate_entity_tuples(extracted, gold)
        assert result.true_positives == 1
        assert result.false_positives == 1  # right tuple, wrong document
        assert result.false_negatives == 1

    def test_missing_candidates_count_as_false_negatives(self):
        gold = {("doc", ("a", "1")), ("doc", ("b", "2"))}
        result = evaluate_entity_tuples(set(), gold)
        assert result.recall == 0.0
        assert result.false_negatives == 2

    def test_duplicates_ignored(self):
        gold = [("doc", ("a", "1"))]
        extracted = [("doc", ("a", "1")), ("doc", ("a", "1"))]
        assert evaluate_entity_tuples(extracted, gold).precision == 1.0


class TestKBComparison:
    def test_table3_statistics(self):
        truth = {("p1", "100"), ("p2", "200"), ("p3", "300"), ("p4", "400")}
        existing = {("p1", "100"), ("p2", "200"), ("foreign", "999")}
        fonduer = {("p1", "100"), ("p2", "200"), ("p3", "300"), ("wrong", "1")}
        comparison = compare_knowledge_bases(fonduer, existing, truth)
        assert comparison.n_existing_entries == 3
        assert comparison.n_fonduer_entries == 4
        assert comparison.coverage == pytest.approx(2 / 3)
        assert comparison.accuracy == pytest.approx(3 / 4)
        assert comparison.n_new_correct_entries == 1
        assert comparison.increase_in_correct_entries == pytest.approx(3 / 2)

    def test_empty_existing_kb(self):
        comparison = compare_knowledge_bases({("a", "1")}, set(), {("a", "1")})
        assert comparison.coverage == 0.0
        assert comparison.increase_in_correct_entries == 1.0

    def test_empty_fonduer_kb(self):
        comparison = compare_knowledge_bases(set(), {("a", "1")}, {("a", "1")})
        assert comparison.accuracy == 0.0
        assert comparison.n_new_correct_entries == 0

    def test_as_dict_keys(self):
        comparison = compare_knowledge_bases({("a", "1")}, {("a", "1")}, {("a", "1")})
        assert set(comparison.as_dict()) == {
            "entries_in_kb",
            "entries_in_fonduer",
            "coverage",
            "accuracy",
            "new_correct_entries",
            "increase_in_correct_entries",
        }

    @given(
        st.sets(st.tuples(st.sampled_from("abcd"), st.sampled_from("123")), max_size=8),
        st.sets(st.tuples(st.sampled_from("abcd"), st.sampled_from("123")), max_size=8),
    )
    def test_coverage_and_accuracy_bounded(self, fonduer, existing):
        truth = existing | fonduer
        comparison = compare_knowledge_bases(fonduer, existing, truth)
        assert 0.0 <= comparison.coverage <= 1.0
        assert 0.0 <= comparison.accuracy <= 1.0
