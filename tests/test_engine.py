"""Tests for the incremental, document-parallel execution engine.

Covers the three contracts ISSUE 1 cares about:

* executor equivalence — serial, thread and process executors produce
  identical candidates, feature rows, label matrices and marginals;
* incremental caching — re-running hits the cache, editing one document
  recomputes only that document, changing an operator's configuration
  invalidates its stage and everything downstream;
* development mode — ``update_labeling_functions`` + ``reuse_candidates``
  re-executes only the labeling stage (Phase 2 is skipped entirely).
"""

import numpy as np
import pytest

from repro.candidates.matchers import NumberMatcher, RegexMatcher
from repro.engine import (
    MISS,
    IncrementalCache,
    Operator,
    PipelineEngine,
    ProcessExecutor,
    SerialExecutor,
    Stage,
    ThreadExecutor,
    create_executor,
    document_fingerprint,
    raw_document_fingerprint,
    stable_fingerprint,
)
from repro.parsing.corpus import CorpusParser, RawDocument
from repro.pipeline.config import FonduerConfig
from repro.pipeline.fonduer import FonduerPipeline


def build_pipeline(dataset, **config_kwargs):
    return FonduerPipeline(
        schema=dataset.schema,
        matchers=dataset.matchers,
        labeling_functions=dataset.labeling_functions,
        throttlers=dataset.throttlers,
        config=FonduerConfig(**config_kwargs),
    )


# --------------------------------------------------------------- fingerprints
class TestStableFingerprint:
    def test_deterministic_for_equal_values(self):
        assert stable_fingerprint({"a": 1, "b": [2, 3]}) == stable_fingerprint(
            {"b": [2, 3], "a": 1}
        )

    def test_sensitive_to_content(self):
        assert stable_fingerprint({"a": 1}) != stable_fingerprint({"a": 2})
        assert stable_fingerprint([1, 2]) != stable_fingerprint([2, 1])

    def test_function_bodies_distinguished(self):
        first = lambda x: x + 1  # noqa: E731
        second = lambda x: x + 2  # noqa: E731
        assert stable_fingerprint(first) != stable_fingerprint(second)

    def test_closure_contents_distinguished(self):
        def make(threshold):
            return lambda x: x > threshold

        assert stable_fingerprint(make(1)) != stable_fingerprint(make(2))
        assert stable_fingerprint(make(5)) == stable_fingerprint(make(5))

    def test_regex_matcher_pattern_distinguished(self):
        assert stable_fingerprint(RegexMatcher(r"BC\d+")) != stable_fingerprint(
            RegexMatcher(r"XY\d+")
        )
        assert stable_fingerprint(NumberMatcher(minimum=1)) != stable_fingerprint(
            NumberMatcher(minimum=2)
        )


class TestDocumentFingerprint:
    def test_reparsing_identical_content_gives_identical_fingerprint(
        self, simple_raw_document
    ):
        first = CorpusParser().parse_document(simple_raw_document)
        second = CorpusParser().parse_document(simple_raw_document)
        assert first is not second
        assert document_fingerprint(first) == document_fingerprint(second)

    def test_content_edit_changes_fingerprint(self, simple_raw_document):
        parser = CorpusParser()
        original = parser.parse_document(simple_raw_document)
        edited_raw = RawDocument(
            name=simple_raw_document.name,
            content=simple_raw_document.content.replace("BC5478", "BC9999"),
            format=simple_raw_document.format,
        )
        edited = parser.parse_document(edited_raw)
        assert document_fingerprint(original) != document_fingerprint(edited)
        assert raw_document_fingerprint(simple_raw_document) != raw_document_fingerprint(
            edited_raw
        )


# ------------------------------------------------------------------ executors
class TestExecutors:
    @pytest.mark.parametrize(
        "executor",
        [SerialExecutor(), ThreadExecutor(n_workers=3), ProcessExecutor(n_workers=3)],
        ids=["serial", "thread", "process"],
    )
    def test_map_preserves_order(self, executor):
        items = list(range(23))
        assert executor.map(lambda x: x * x, items) == [x * x for x in items]

    def test_executors_agree(self):
        items = [{"v": i} for i in range(17)]
        function = lambda item: item["v"] * 2 + 1  # noqa: E731
        serial = SerialExecutor().map(function, items)
        assert ThreadExecutor(n_workers=4).map(function, items) == serial
        assert ProcessExecutor(n_workers=4, chunk_size=3).map(function, items) == serial

    def test_chunk_bounds_cover_everything(self):
        executor = ProcessExecutor(n_workers=4, chunk_size=None)
        bounds = executor._chunk_bounds(13)
        flattened = [i for lo, hi in bounds for i in range(lo, hi)]
        assert flattened == list(range(13))

    def test_invalid_worker_counts(self):
        with pytest.raises(ValueError):
            ThreadExecutor(n_workers=0)
        with pytest.raises(ValueError):
            ProcessExecutor(n_workers=0)
        with pytest.raises(ValueError):
            ProcessExecutor(n_workers=2, chunk_size=0)

    def test_create_executor_factory(self):
        assert isinstance(create_executor("serial"), SerialExecutor)
        assert isinstance(create_executor("thread", n_workers=2), ThreadExecutor)
        assert isinstance(create_executor("process", n_workers=2), ProcessExecutor)
        with pytest.raises(ValueError):
            create_executor("ray")


# ---------------------------------------------------------------------- cache
class TestIncrementalCache:
    def test_miss_then_hit(self):
        cache = IncrementalCache()
        assert cache.lookup("k") is MISS
        cache.put("k", [1, 2])
        assert cache.lookup("k") == [1, 2]
        assert cache.hits == 1 and cache.misses == 1

    def test_cached_none_is_not_a_miss(self):
        cache = IncrementalCache()
        cache.put("k", None)
        assert cache.lookup("k") is None

    def test_disabled_cache_never_stores(self):
        cache = IncrementalCache(enabled=False)
        cache.put("k", 1)
        assert cache.lookup("k") is MISS
        assert cache.size == 0

    def test_lru_eviction(self):
        cache = IncrementalCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.lookup("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert "b" not in cache
        assert cache.lookup("a") == 1 and cache.lookup("c") == 3

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            IncrementalCache(max_entries=0)

    def test_invalidate_and_clear(self):
        cache = IncrementalCache()
        cache.put("a", 1)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0


# ------------------------------------------------------------------------ DAG
class _AddOp(Operator):
    name = "add"

    def __init__(self, amount):
        self.amount = amount
        self.calls = 0

    def config_state(self):
        return self.amount

    def process(self, unit):
        self.calls += 1
        return unit + self.amount


class _ScaleOp(Operator):
    name = "scale"

    def __init__(self, factor):
        self.factor = factor
        self.calls = 0

    def config_state(self):
        return self.factor

    def process(self, unit):
        self.calls += 1
        return unit * self.factor


class TestPipelineEngineDAG:
    def test_chained_stages(self):
        engine = PipelineEngine([Stage(_AddOp(1)), Stage(_ScaleOp(10), upstream="add")])
        outputs = engine.run([1, 2, 3])
        assert outputs["add"].results == [2, 3, 4]
        assert outputs["scale"].results == [20, 30, 40]

    def test_upstream_config_change_invalidates_downstream(self):
        cache = IncrementalCache()
        scale = _ScaleOp(10)
        engine = PipelineEngine(
            [Stage(_AddOp(1)), Stage(scale, upstream="add")], cache=cache
        )
        engine.run([1, 2, 3])
        assert scale.calls == 3

        # Same configs: everything cached, no recomputation anywhere.
        rerun = PipelineEngine(
            [Stage(_AddOp(1)), Stage(_ScaleOp(10), upstream="add")], cache=cache
        )
        outputs = rerun.run([1, 2, 3])
        assert outputs["add"].stats.n_cached == 3
        assert outputs["scale"].stats.n_cached == 3

        # Changing the *upstream* op invalidates the downstream stage too,
        # because downstream keys chain through upstream output keys.
        changed = PipelineEngine(
            [Stage(_AddOp(2)), Stage(_ScaleOp(10), upstream="add")], cache=cache
        )
        outputs = changed.run([1, 2, 3])
        assert outputs["add"].stats.n_computed == 3
        assert outputs["scale"].stats.n_computed == 3
        assert outputs["scale"].results == [30, 40, 50]

    def test_mutating_operator_config_between_runs_invalidates(self):
        # fingerprint() must not be memoized: direct engine users may mutate
        # the wrapped component's configuration between runs.
        cache = IncrementalCache()
        add = _AddOp(1)
        engine = PipelineEngine([Stage(add)], cache=cache)
        assert engine.run([1, 2])["add"].results == [2, 3]
        add.amount = 5
        outputs = engine.run([1, 2])
        assert outputs["add"].results == [6, 7]
        assert outputs["add"].stats.n_computed == 2

    def test_fan_out_shares_upstream(self):
        engine = PipelineEngine(
            [
                Stage(_AddOp(1)),
                Stage(_ScaleOp(2), upstream="add", name="double"),
                Stage(_ScaleOp(3), upstream="add", name="triple"),
            ]
        )
        outputs = engine.run([1, 2])
        assert outputs["double"].results == [4, 6]
        assert outputs["triple"].results == [6, 9]

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError):
            PipelineEngine([Stage(_AddOp(1)), Stage(_AddOp(2))])

    def test_unknown_upstream_rejected(self):
        with pytest.raises(ValueError):
            PipelineEngine([Stage(_AddOp(1), upstream="nope")])

    def test_key_count_mismatch_rejected(self):
        engine = PipelineEngine()
        with pytest.raises(ValueError):
            engine.run_stage(_AddOp(1), [1, 2, 3], ["only-one-key"])


# --------------------------------------------------- executor equivalence
class TestExecutorEquivalence:
    """Serial, thread and process executors must be byte-identical end to end."""

    @pytest.fixture(scope="class")
    def runs(self, electronics_dataset, electronics_documents):
        results = {}
        for executor in ("serial", "thread", "process"):
            pipeline = build_pipeline(
                electronics_dataset, executor=executor, n_workers=4
            )
            result = pipeline.run(
                electronics_documents, gold=electronics_dataset.gold_entries
            )
            label_matrix = pipeline.apply_labeling_functions()
            results[executor] = (pipeline, result, label_matrix)
        return results

    def test_candidates_identical(self, runs):
        serial = [(c.id, c.entity_tuple) for c in runs["serial"][0].candidates]
        for executor in ("thread", "process"):
            assert [(c.id, c.entity_tuple) for c in runs[executor][0].candidates] == serial

    def test_feature_rows_identical(self, runs):
        serial = runs["serial"][0].featurize()
        for executor in ("thread", "process"):
            assert runs[executor][0].featurize() == serial

    def test_label_matrices_identical(self, runs):
        serial = runs["serial"][2]
        for executor in ("thread", "process"):
            assert np.array_equal(runs[executor][2], serial)

    def test_marginals_identical(self, runs):
        serial = runs["serial"][1].marginals
        for executor in ("thread", "process"):
            assert np.array_equal(runs[executor][1].marginals, serial)

    def test_extracted_entries_identical(self, runs):
        serial = runs["serial"][1].extracted_entries
        for executor in ("thread", "process"):
            assert runs[executor][1].extracted_entries == serial


# ------------------------------------------------------- incremental behaviour
class TestIncrementalExecution:
    def test_rerun_is_fully_cached(self, electronics_dataset, electronics_documents):
        pipeline = build_pipeline(electronics_dataset)
        pipeline.generate_candidates(electronics_documents)
        assert pipeline.stage_stats["candidates"].n_computed == len(electronics_documents)
        pipeline.generate_candidates(electronics_documents)
        stats = pipeline.stage_stats["candidates"]
        assert stats.n_cached == len(electronics_documents)
        assert stats.n_computed == 0

    def test_document_edit_recomputes_only_that_document(self, electronics_dataset):
        # Fresh parse so the session-scoped fixture documents stay pristine.
        documents = CorpusParser().parse(electronics_dataset.corpus.raw_documents)
        pipeline = build_pipeline(electronics_dataset)
        pipeline.generate_candidates(documents)

        sentence = next(documents[0].sentences())
        sentence.words[0] = sentence.words[0] + "-edited"
        pipeline.generate_candidates(documents)
        stats = pipeline.stage_stats["candidates"]
        assert stats.n_computed == 1
        assert stats.n_cached == len(documents) - 1

    def test_incremental_disabled_always_recomputes(
        self, electronics_dataset, electronics_documents
    ):
        pipeline = build_pipeline(electronics_dataset, incremental=False)
        pipeline.generate_candidates(electronics_documents)
        pipeline.generate_candidates(electronics_documents)
        assert pipeline.stage_stats["candidates"].n_cached == 0
        assert pipeline.stage_stats["candidates"].n_computed == len(electronics_documents)

    def test_development_mode_skips_phase_2(
        self, electronics_dataset, electronics_documents
    ):
        pipeline = build_pipeline(electronics_dataset)
        first = pipeline.run(electronics_documents, gold=electronics_dataset.gold_entries)
        assert first.stage_stats["label"].n_computed == len(electronics_documents)

        pipeline.update_labeling_functions(
            electronics_dataset.metadata_labeling_functions
        )
        second = pipeline.run(
            electronics_documents,
            gold=electronics_dataset.gold_entries,
            reuse_candidates=True,
        )
        # Phase 2 never ran; featurization came from cache; only the label
        # stage (whose LF-set fingerprint changed) was recomputed.
        assert "candidates" not in second.stage_stats
        assert second.stage_stats["featurize"].n_cached == len(electronics_documents)
        assert second.stage_stats["featurize"].n_computed == 0
        assert second.stage_stats["label"].n_computed == len(electronics_documents)
        assert second.n_candidates == first.n_candidates

    def test_relabeling_with_same_lfs_hits_cache(
        self, electronics_dataset, electronics_documents
    ):
        pipeline = build_pipeline(electronics_dataset)
        pipeline.generate_candidates(electronics_documents)
        first = pipeline.apply_labeling_functions()
        assert pipeline.stage_stats["label"].n_computed == len(electronics_documents)
        second = pipeline.apply_labeling_functions()
        assert pipeline.stage_stats["label"].n_cached == len(electronics_documents)
        assert np.array_equal(first, second)


# ----------------------------------------------------------- parse through engine
class TestEngineParsing:
    def test_corpus_parser_executor_equivalence(self, electronics_dataset):
        raws = electronics_dataset.corpus.raw_documents
        serial = CorpusParser().parse(raws)
        threaded = CorpusParser().parse(raws, executor=ThreadExecutor(n_workers=4))
        forked = CorpusParser().parse(raws, executor=ProcessExecutor(n_workers=4))
        serial_fps = [document_fingerprint(d) for d in serial]
        assert [document_fingerprint(d) for d in threaded] == serial_fps
        assert [document_fingerprint(d) for d in forked] == serial_fps

    def test_run_from_raw_matches_run_on_parsed(self, electronics_dataset):
        raws = electronics_dataset.corpus.raw_documents
        via_raw = build_pipeline(electronics_dataset).run_from_raw(
            raws, gold=electronics_dataset.gold_entries
        )
        via_parsed = build_pipeline(electronics_dataset).run(
            CorpusParser().parse(raws), gold=electronics_dataset.gold_entries
        )
        assert via_raw.n_candidates == via_parsed.n_candidates
        assert via_raw.extracted_entries == via_parsed.extracted_entries
        assert np.array_equal(via_raw.marginals, via_parsed.marginals)
        assert via_raw.stage_stats["parse"].n_computed == len(raws)

    def test_reparse_is_cached(self, electronics_dataset):
        raws = electronics_dataset.corpus.raw_documents
        pipeline = build_pipeline(electronics_dataset)
        pipeline.parse_documents(raws)
        assert pipeline.stage_stats["parse"].n_computed == len(raws)
        pipeline.parse_documents(raws)
        assert pipeline.stage_stats["parse"].n_cached == len(raws)
        assert pipeline.stage_stats["parse"].n_computed == 0
