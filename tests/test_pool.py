"""The persistent fork-once worker pool and its latency autotuner.

Covers the pool's scheduling contract (ordered results, affinity, chunked
dispatch), its crash containment (a worker killed -9 mid-task is detected,
respawned and the chunk retried once — never a hang), handler-error
propagation with the remote traceback, and the removal of the process-wide
``_FORK_WORK`` single slot: two threads must be able to drive parallel maps
concurrently without serializing on a global lock.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.engine.executors import (
    _WORK_REGISTRY,
    PoolExecutor,
    ProcessExecutor,
    create_executor,
)
from repro.engine.pool import (
    LatencyAutotuner,
    PersistentWorkerPool,
    WorkerCrashError,
    WorkerTaskError,
)

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="host platform is spawn-only",
)


def _double(batch):
    return [item * 2 for item in batch]


class TestLatencyAutotuner:
    def test_cold_start_uses_min_chunk(self):
        tuner = LatencyAutotuner(target_seconds=0.2, min_chunk=1, max_chunk=64)
        assert tuner.chunk() == 1
        assert tuner.per_item_seconds is None

    def test_fast_items_grow_the_chunk(self):
        tuner = LatencyAutotuner(target_seconds=0.2, max_chunk=64)
        tuner.observe(10, 0.01)  # 1ms per item -> 200 ideal, capped at 64
        assert tuner.chunk() == 64

    def test_slow_items_fall_back_to_fine_chunks(self):
        tuner = LatencyAutotuner(target_seconds=0.2)
        tuner.observe(4, 4.0)  # 1s per item
        assert tuner.chunk() == 1

    def test_ema_tracks_shifting_latency(self):
        tuner = LatencyAutotuner(target_seconds=1.0, smoothing=0.5, max_chunk=1000)
        tuner.observe(1, 0.01)
        first = tuner.chunk()
        tuner.observe(1, 1.0)  # items got much slower
        assert tuner.chunk() < first

    def test_chunk_for_is_static_heuristic_when_cold(self):
        tuner = LatencyAutotuner()
        # ceil(100 / (4 * 4)) == 7 — the classic pre-autotuning split.
        assert tuner.chunk_for(100, 4) == 7

    def test_chunk_for_caps_at_one_chunk_per_worker(self):
        tuner = LatencyAutotuner(target_seconds=10.0, max_chunk=10_000)
        tuner.observe(100, 0.001)  # effectively free items
        assert tuner.chunk_for(100, 4) == 25

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LatencyAutotuner(target_seconds=0)
        with pytest.raises(ValueError):
            LatencyAutotuner(smoothing=0)
        with pytest.raises(ValueError):
            LatencyAutotuner(min_chunk=5, max_chunk=2)


@fork_only
class TestPersistentWorkerPool:
    def test_run_preserves_input_order(self):
        with PersistentWorkerPool(_double, n_workers=3) as pool:
            assert pool.run(list(range(20))) == [i * 2 for i in range(20)]

    def test_results_survive_multiple_calls_on_same_workers(self):
        with PersistentWorkerPool(_double, n_workers=2) as pool:
            first = pool.run([1, 2, 3])
            second = pool.run([4, 5, 6])
        assert first == [2, 4, 6] and second == [8, 10, 12]
        assert pool.respawns == 0

    def test_affinity_routes_items_to_home_workers(self):
        def whoami(batch):
            return [os.getpid() for _ in batch]

        # Pin the chunk size to each home queue's full length so both tasks
        # dispatch in the initial fill, before any completion could trigger
        # work stealing — making the affinity routing deterministic.
        tuner = LatencyAutotuner(min_chunk=2, max_chunk=2)
        with PersistentWorkerPool(whoami, n_workers=2, autotuner=tuner) as pool:
            pids = pool.run(list(range(4)), affinity=[0, 0, 1, 1])
        assert pids[0] == pids[1]
        assert pids[2] == pids[3]
        assert pids[0] != pids[2]

    def test_idle_workers_steal_from_the_longest_backlog(self):
        def whoami(batch):
            return [os.getpid() for _ in batch]

        # Everything affined to worker 0: worker 1 must steal rather than
        # idle, so more than one pid serves the items.
        with PersistentWorkerPool(whoami, n_workers=2) as pool:
            pids = pool.run(list(range(16)), affinity=[0] * 16)
        assert len(set(pids)) == 2

    def test_handler_closure_is_inherited_not_pickled(self):
        secret = {"value": 41}  # captured by a closure: unpicklable by Pool rules
        handler = lambda batch: [secret["value"] + x for x in batch]  # noqa: E731
        with PersistentWorkerPool(handler, n_workers=2) as pool:
            assert pool.run([1, 2]) == [42, 43]

    def test_empty_input_never_forks(self):
        pool = PersistentWorkerPool(_double, n_workers=2)
        assert pool.run([]) == []
        assert all(worker is None for worker in pool._workers)
        pool.close()

    def test_autotuned_chunks_batch_cheap_items(self):
        # The handler runs in workers, so batch sizes are reported through
        # the results for the parent to inspect.
        def sized(batch):
            return [(len(batch), item) for item in batch]

        tuner = LatencyAutotuner(target_seconds=0.5, max_chunk=16)
        with PersistentWorkerPool(sized, n_workers=1, autotuner=tuner) as pool:
            results = pool.run(list(range(64)))
        batch_sizes = {size for size, _item in results}
        # Cheap items must have been coalesced beyond one-at-a-time dispatch.
        assert max(batch_sizes) > 1
        assert sorted(item for _size, item in results) == list(range(64))

    def test_handler_error_carries_remote_traceback(self):
        def explode(batch):
            raise ValueError("sentinel-explosion")

        with pytest.raises(WorkerTaskError, match="sentinel-explosion"):
            with PersistentWorkerPool(explode, n_workers=2) as pool:
                pool.run([1, 2, 3])

    def test_worker_killed_midtask_is_respawned_and_chunk_retried(self, tmp_path):
        flag = tmp_path / "already-died"

        def die_once(batch):
            out = []
            for item in batch:
                if item == "die" and not flag.exists():
                    flag.write_text("x")
                    os.kill(os.getpid(), signal.SIGKILL)
                out.append(item)
            return out

        with PersistentWorkerPool(die_once, n_workers=2) as pool:
            assert pool.run(["a", "die", "b", "c"]) == ["a", "die", "b", "c"]
            assert pool.respawns >= 1

    def test_worker_that_always_dies_raises_instead_of_hanging(self):
        def always_die(batch):
            os.kill(os.getpid(), signal.SIGKILL)

        start = time.monotonic()
        with pytest.raises(WorkerCrashError, match="died"):
            with PersistentWorkerPool(always_die, n_workers=2, retries=1) as pool:
                pool.run([1, 2, 3, 4])
        assert time.monotonic() - start < 30.0  # detected, not hung

    def test_close_is_idempotent_and_terminates_workers(self):
        pool = PersistentWorkerPool(_double, n_workers=2)
        pool.run([1])
        processes = [w.process for w in pool._workers if w is not None]
        pool.close()
        pool.close()
        assert all(not process.is_alive() for process in processes)
        with pytest.raises(RuntimeError, match="closed"):
            list(pool.imap([1]))

    def test_spawn_only_platform_fails_fast(self, monkeypatch):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        with pytest.raises(RuntimeError, match="'fork' start method"):
            PersistentWorkerPool(_double, n_workers=2)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PersistentWorkerPool(_double, n_workers=0)
        with pytest.raises(ValueError):
            PersistentWorkerPool(_double, retries=-1)
        with PersistentWorkerPool(_double, n_workers=2) as pool:
            with pytest.raises(ValueError, match="affinity"):
                list(pool.imap([1, 2], affinity=[0]))


@fork_only
class TestConcurrentForkMaps:
    """The `_FORK_WORK` single-slot global (and its lock) are gone."""

    def test_registry_is_empty_between_maps(self):
        executor = ProcessExecutor(n_workers=2)
        executor.map(lambda x: x + 1, list(range(8)))
        assert not _WORK_REGISTRY

    def test_two_threads_map_concurrently_without_serializing(self):
        delay = 0.15

        def slow(x):
            time.sleep(delay)
            return x

        results = {}

        def drive(tag):
            executor = ProcessExecutor(n_workers=4, chunk_size=1)
            results[tag] = executor.map(slow, list(range(4)))

        threads = [threading.Thread(target=drive, args=(i,)) for i in range(2)]
        start = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - start
        assert results[0] == results[1] == list(range(4))
        # Serialized through the old global lock this would take at least
        # 2 maps x 4 sequential sleeps... no — 2 maps back to back, each
        # >= delay (4 workers x 1 chunk each): >= 2 * 4 * delay serialized
        # on one core's lock vs overlapping otherwise.  Be conservative and
        # only require the two maps to overlap at all.
        serialized_floor = 2 * 4 * delay
        assert elapsed < serialized_floor

    def test_concurrent_maps_never_cross_work(self):
        def drive(offset, out):
            executor = ProcessExecutor(n_workers=2, chunk_size=2)
            out[offset] = executor.map(lambda x: x + offset, list(range(10)))

        out = {}
        threads = [
            threading.Thread(target=drive, args=(offset, out))
            for offset in (100, 200)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert out[100] == [x + 100 for x in range(10)]
        assert out[200] == [x + 200 for x in range(10)]


@fork_only
class TestPoolExecutorStrategy:
    def test_create_executor_builds_pool_executor(self):
        executor = create_executor("pool", n_workers=3)
        assert isinstance(executor, PoolExecutor)
        assert isinstance(executor, ProcessExecutor)  # fallback behavior
        assert executor.name == "pool"
        assert executor.map(lambda x: x * x, [1, 2, 3]) == [1, 4, 9]

    def test_process_executor_autotunes_chunks_across_maps(self):
        executor = ProcessExecutor(n_workers=2)
        # Cold: the static heuristic — ceil(64 / (4*2)) == 8.
        assert executor._chunk_bounds(64)[0] == (0, 8)
        executor.map(lambda x: x, list(range(64)))  # near-instant units
        warm = executor._chunk_bounds(64)[0][1]
        assert warm >= 8  # cheap units coalesce into at-least-as-large chunks

    def test_explicit_chunk_size_still_wins(self):
        executor = ProcessExecutor(n_workers=2, chunk_size=5)
        executor.map(lambda x: x, list(range(20)))
        assert executor._chunk_bounds(20)[0] == (0, 5)
