"""Tests for the discriminative models: logistic head, multimodal LSTM, document RNN."""

import numpy as np
import pytest
from repro.evaluation.metrics import evaluate_binary
from repro.features.featurizer import Featurizer
from repro.learning.doc_rnn import DocumentRNN, DocumentRNNConfig
from repro.learning.logistic import LogisticConfig, SparseLogisticRegression
from repro.learning.marginals import classify_marginals, sweep_thresholds
from repro.learning.multimodal_lstm import MultimodalLSTM, MultimodalLSTMConfig


@pytest.fixture(scope="module")
def labeled_candidates(electronics_candidates):
    candidates, gold = electronics_candidates
    featurizer = Featurizer()
    rows = [
        {name: 1.0 for name in featurizer.features_for_candidate(candidate)}
        for candidate in candidates
    ]
    targets = (gold.astype(float) + 1.0) / 2.0
    return candidates, rows, gold, targets


class TestSparseLogisticRegression:
    def test_learns_linearly_separable_data(self):
        rows = [{"a": 1.0}, {"a": 1.0, "b": 1.0}, {"b": 1.0}, {"c": 1.0}, {"c": 1.0, "d": 1.0}]
        targets = [1.0, 1.0, 1.0, 0.0, 0.0]
        model = SparseLogisticRegression(LogisticConfig(n_epochs=100, learning_rate=0.5))
        model.fit(rows, targets)
        proba = model.predict_proba(rows)
        assert all(proba[:3] > 0.5) and all(proba[3:] < 0.5)

    def test_predict_hard_labels(self):
        model = SparseLogisticRegression(LogisticConfig(n_epochs=50))
        model.fit([{"x": 1.0}, {"y": 1.0}], [1.0, 0.0])
        assert model.predict([{"x": 1.0}]).tolist() == [1]
        assert model.predict([{"y": 1.0}]).tolist() == [-1]

    def test_unseen_features_ignored(self):
        model = SparseLogisticRegression()
        model.fit([{"x": 1.0}], [1.0])
        proba = model.predict_proba([{"never_seen": 1.0}])
        assert 0.0 <= proba[0] <= 1.0

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            SparseLogisticRegression().fit([{"x": 1.0}], [1.0, 0.0])

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            SparseLogisticRegression().predict_proba([{"x": 1.0}])

    def test_soft_targets_supported(self):
        model = SparseLogisticRegression(LogisticConfig(n_epochs=60))
        model.fit([{"x": 1.0}, {"y": 1.0}], [0.9, 0.1])
        proba = model.predict_proba([{"x": 1.0}, {"y": 1.0}])
        assert proba[0] > proba[1]

    def test_on_electronics_features(self, labeled_candidates):
        _, rows, gold, targets = labeled_candidates
        model = SparseLogisticRegression().fit(rows, targets)
        predictions = model.predict(rows)
        result = evaluate_binary(predictions, gold)
        assert result.f1 > 0.8  # should fit the training data well


class TestMarginalUtilities:
    def test_classify_marginals(self, labeled_candidates):
        candidates, _, _, _ = labeled_candidates
        marginals = np.linspace(0, 1, len(candidates))
        kept = classify_marginals(candidates, marginals, threshold=0.8)
        assert all(m > 0.8 for c, m in zip(candidates, marginals) if c in kept)
        assert len(kept) == int(np.sum(marginals > 0.8))

    def test_classify_marginals_validation(self, labeled_candidates):
        candidates, _, _, _ = labeled_candidates
        with pytest.raises(ValueError):
            classify_marginals(candidates, [0.5])
        with pytest.raises(ValueError):
            classify_marginals(candidates[:1], [0.5], threshold=1.5)

    def test_sweep_thresholds_shape(self):
        marginals = [0.1, 0.4, 0.6, 0.9]
        gold = [-1, -1, 1, 1]
        sweep = sweep_thresholds(marginals, gold, thresholds=(0.3, 0.5, 0.7))
        assert len(sweep) == 3
        best = max(sweep, key=lambda pair: pair[1])
        assert best[1] == 1.0


class TestMultimodalLSTM:
    @pytest.fixture(scope="class")
    def trained_model(self, labeled_candidates):
        candidates, rows, gold, targets = labeled_candidates
        config = MultimodalLSTMConfig(
            embedding_dim=12, hidden_dim=8, attention_dim=8, n_epochs=4, max_sequence_length=16
        )
        model = MultimodalLSTM(arity=2, config=config)
        model.fit(candidates, rows, targets)
        return model, candidates, rows, gold

    def test_training_reduces_loss(self, trained_model):
        model, _, _, _ = trained_model
        assert model.stats.losses[-1] < model.stats.losses[0]
        assert model.stats.seconds_per_epoch > 0

    def test_predictions_quality(self, trained_model):
        model, candidates, rows, gold = trained_model
        predictions = model.predict(candidates, rows)
        result = evaluate_binary(predictions, gold)
        assert result.f1 > 0.6

    def test_probabilities_in_unit_interval(self, trained_model):
        model, candidates, rows, _ = trained_model
        proba = model.predict_proba(candidates, rows)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_feature_head_contributes(self, trained_model):
        model, candidates, rows, _ = trained_model
        with_features = model.predict_proba(candidates[:5], rows[:5])
        without_features = model.predict_proba(candidates[:5], [{} for _ in range(5)])
        assert not np.allclose(with_features, without_features)

    def test_input_validation(self, labeled_candidates):
        candidates, rows, _, targets = labeled_candidates
        model = MultimodalLSTM(arity=2)
        with pytest.raises(ValueError):
            model.fit(candidates, rows[:-1], targets)
        with pytest.raises(ValueError):
            model.fit([], [], [])
        with pytest.raises(ValueError):
            MultimodalLSTM(arity=0)

    def test_max_pooling_variant(self, labeled_candidates):
        candidates, rows, gold, targets = labeled_candidates
        config = MultimodalLSTMConfig(
            embedding_dim=8, hidden_dim=6, n_epochs=2, use_attention=False, max_sequence_length=12
        )
        model = MultimodalLSTM(arity=2, config=config)
        model.fit(candidates[:40], rows[:40], targets[:40])
        proba = model.predict_proba(candidates[:10], rows[:10])
        assert proba.shape == (10,)

    def test_mention_tokens_include_markers(self, labeled_candidates):
        candidates, _, _, _ = labeled_candidates
        model = MultimodalLSTM(arity=2)
        tokens = model._mention_tokens(candidates[0], 0)
        assert "[[1" in tokens and "1]]" in tokens
        assert len(tokens) <= model.config.max_sequence_length


class TestDocumentRNN:
    def test_trains_and_predicts(self, labeled_candidates):
        candidates, _, gold, targets = labeled_candidates
        config = DocumentRNNConfig(
            embedding_dim=8, hidden_dim=6, attention_dim=6, n_epochs=1, max_document_length=80
        )
        model = DocumentRNN(arity=2, config=config)
        subset = list(range(0, len(candidates), 4))
        model.fit([candidates[i] for i in subset], targets[subset])
        proba = model.predict_proba([candidates[i] for i in subset[:5]])
        assert proba.shape == (min(5, len(subset)),)
        assert np.all((proba >= 0) & (proba <= 1))
        assert model.stats.seconds_per_epoch > 0

    def test_document_tokens_are_document_wide(self, labeled_candidates):
        candidates, _, _, _ = labeled_candidates
        model = DocumentRNN(arity=2, config=DocumentRNNConfig(max_document_length=500))
        doc_tokens = model._document_tokens(candidates[0])
        sentence_tokens = MultimodalLSTM(arity=2)._mention_tokens(candidates[0], 0)
        assert len(doc_tokens) > len(sentence_tokens)
        assert "[[1" in doc_tokens and "[[2" in doc_tokens

    def test_slower_per_epoch_than_fonduer_model(self, labeled_candidates):
        """The runtime gap of Table 6: document-wide sequences cost much more per epoch."""
        candidates, rows, _, targets = labeled_candidates
        subset = list(range(0, min(len(candidates), 20)))
        sub_candidates = [candidates[i] for i in subset]
        sub_rows = [rows[i] for i in subset]
        sub_targets = targets[subset]

        fonduer_config = MultimodalLSTMConfig(embedding_dim=8, hidden_dim=6, n_epochs=1, max_sequence_length=16)
        fonduer_model = MultimodalLSTM(arity=2, config=fonduer_config)
        fonduer_model.fit(sub_candidates, sub_rows, sub_targets)

        doc_config = DocumentRNNConfig(embedding_dim=8, hidden_dim=6, n_epochs=1, max_document_length=400)
        doc_model = DocumentRNN(arity=2, config=doc_config)
        doc_model.fit(sub_candidates, sub_targets)

        assert doc_model.stats.seconds_per_epoch > fonduer_model.stats.seconds_per_epoch

    def test_input_validation(self, labeled_candidates):
        candidates, _, _, _ = labeled_candidates
        with pytest.raises(ValueError):
            DocumentRNN(arity=2).fit(candidates, [0.5])
        with pytest.raises(ValueError):
            DocumentRNN(arity=2).fit([], [])


class TestLogisticCSRInput:
    def test_csr_and_dict_rows_train_identically(self):
        import numpy as np

        from repro.learning.logistic import SparseLogisticRegression
        from repro.storage.sparse import CSRMatrix

        rng = np.random.default_rng(0)
        names = [f"f{j}" for j in range(12)]
        rows = []
        for _ in range(40):
            chosen = rng.choice(12, size=4, replace=False)
            rows.append({names[j]: float(rng.integers(1, 3)) for j in chosen})
        targets = rng.random(40)
        csr = CSRMatrix.from_rows(rows)

        dict_model = SparseLogisticRegression().fit(rows, targets)
        csr_model = SparseLogisticRegression().fit(csr, targets)
        # Same interning order, same visit order: training is bitwise identical.
        assert np.array_equal(dict_model.weights, csr_model.weights)
        assert dict_model.bias == csr_model.bias
        assert np.allclose(
            dict_model.predict_proba(rows), csr_model.predict_proba(csr),
            rtol=0.0, atol=1e-12,
        )

    def test_csr_predict_ignores_unknown_features(self):
        import numpy as np

        from repro.learning.logistic import SparseLogisticRegression
        from repro.storage.sparse import CSRMatrix

        train = [{"a": 1.0}, {"a": 2.0}, {"b": 1.0}, {"b": 2.0}]
        model = SparseLogisticRegression().fit(train, [0.9, 0.9, 0.1, 0.1])
        test_csr = CSRMatrix.from_rows([{"a": 1.0, "zzz": 5.0}, {"zzz": 5.0}])
        scores = model.decision_function(test_csr)
        assert scores[1] == model.bias  # unknown-only row scores at the bias
        assert scores[0] != scores[1]
