"""Tests for the context hierarchy (repro.data_model.context)."""

import pytest

from repro.data_model.context import (
    Cell,
    Column,
    Document,
    Paragraph,
    Row,
    Section,
    Sentence,
    Span,
    Table,
    Text,
)
from repro.data_model.visual import BoundingBox


def build_tiny_document():
    document = Document("tiny")
    section = Section(document, position=0)
    text = Text(section, position=0)
    paragraph = Paragraph(text, position=0)
    sentence = Sentence(paragraph, words=["Hello", "world"], position=0, html_tag="p")
    table = Table(section, position=1)
    Row(table, 0)
    Row(table, 1)
    Column(table, 0)
    Column(table, 1)
    header = Cell(table, 0, 0, is_header=True)
    Sentence(Paragraph(header, 0), words=["Name"], position=0, html_tag="th")
    value = Cell(table, 1, 1)
    Sentence(Paragraph(value, 0), words=["42"], position=0, html_tag="td")
    return document, sentence, table


class TestHierarchy:
    def test_document_sections(self):
        document, _, _ = build_tiny_document()
        assert len(document.sections) == 1

    def test_parent_child_links(self):
        document, sentence, _ = build_tiny_document()
        assert sentence.document is document
        assert sentence in list(document.sentences())

    def test_ancestors_order(self):
        _, sentence, _ = build_tiny_document()
        names = [type(a).__name__ for a in sentence.ancestors()]
        assert names == ["Paragraph", "Text", "Section", "Document"]

    def test_depth(self):
        document, sentence, _ = build_tiny_document()
        assert document.depth() == 0
        assert sentence.depth() == 4

    def test_descendants_include_sentences(self):
        document, _, _ = build_tiny_document()
        sentence_count = sum(1 for _ in document.sentences())
        assert sentence_count == 3

    def test_text_concatenation(self):
        document, _, _ = build_tiny_document()
        assert "Hello world" in document.text()

    def test_stable_ids_unique(self):
        document, _, _ = build_tiny_document()
        ids = [c.stable_id for c in document.descendants()]
        assert len(ids) == len(set(ids))

    def test_tables_and_texts_listing(self):
        document, _, table = build_tiny_document()
        assert document.tables() == [table]
        assert len(document.texts()) == 1


class TestTable:
    def test_dimensions(self):
        _, _, table = build_tiny_document()
        assert table.n_rows == 2
        assert table.n_columns == 2

    def test_cell_at(self):
        _, _, table = build_tiny_document()
        assert table.cell_at(0, 0) is not None
        assert table.cell_at(1, 1) is not None
        assert table.cell_at(0, 1) is None

    def test_row_and_column_cells(self):
        _, _, table = build_tiny_document()
        assert len(table.row_cells(0)) == 1
        assert len(table.column_cells(1)) == 1

    def test_header_row_cells(self):
        _, _, table = build_tiny_document()
        headers = table.header_row_cells()
        assert len(headers) == 1
        assert headers[0].is_header

    def test_spanning_cell(self):
        document = Document("span")
        section = Section(document)
        table = Table(section)
        Row(table, 0), Row(table, 1)
        Column(table, 0), Column(table, 1)
        cell = Cell(table, 0, 0, row_end=1, col_end=1)
        assert cell.row_span == 2
        assert cell.col_span == 2
        assert table.cell_at(1, 1) is cell

    def test_negative_span_rejected(self):
        document = Document("bad")
        table = Table(Section(document))
        with pytest.raises(ValueError):
            Cell(table, 2, 2, row_end=1)


class TestSentence:
    def test_parallel_list_validation(self):
        document = Document("x")
        paragraph = Paragraph(Text(Section(document)))
        with pytest.raises(ValueError):
            Sentence(paragraph, words=["a", "b"], lemmas=["a"])

    def test_default_lemmas_lowercase(self):
        document = Document("x")
        paragraph = Paragraph(Text(Section(document)))
        sentence = Sentence(paragraph, words=["Hello", "World"])
        assert sentence.lemmas == ["hello", "world"]

    def test_set_word_boxes_length_check(self):
        _, sentence, _ = build_tiny_document()
        with pytest.raises(ValueError):
            sentence.set_word_boxes([None])

    def test_tabular_flags(self):
        document, sentence, table = build_tiny_document()
        assert not sentence.is_tabular
        tabular_sentence = next(iter(table.cells[0].sentences()))
        assert tabular_sentence.is_tabular
        assert tabular_sentence.table is table

    def test_page_none_without_boxes(self):
        _, sentence, _ = build_tiny_document()
        assert sentence.page is None
        assert not sentence.is_visual

    def test_spans_enumeration(self):
        _, sentence, _ = build_tiny_document()
        spans = list(sentence.spans(max_ngrams=2))
        # 2 unigrams + 1 bigram
        assert len(spans) == 3


class TestSpan:
    def test_text_and_len(self):
        _, sentence, _ = build_tiny_document()
        span = Span(sentence, 0, 2)
        assert span.text() == "Hello world"
        assert len(span) == 2

    def test_invalid_bounds_rejected(self):
        _, sentence, _ = build_tiny_document()
        with pytest.raises(ValueError):
            Span(sentence, 1, 1)
        with pytest.raises(ValueError):
            Span(sentence, 0, 5)

    def test_equality_and_hash(self):
        _, sentence, _ = build_tiny_document()
        assert Span(sentence, 0, 1) == Span(sentence, 0, 1)
        assert Span(sentence, 0, 1) != Span(sentence, 1, 2)
        assert len({Span(sentence, 0, 1), Span(sentence, 0, 1)}) == 1

    def test_bounding_box_merges_word_boxes(self):
        _, sentence, _ = build_tiny_document()
        sentence.set_word_boxes(
            [BoundingBox(0, 0, 0, 10, 10), BoundingBox(0, 20, 0, 40, 10)]
        )
        span = Span(sentence, 0, 2)
        assert span.bounding_box.x1 == 40
        assert span.page == 0

    def test_attrib_tokens(self):
        _, sentence, _ = build_tiny_document()
        span = Span(sentence, 0, 1)
        assert span.get_attrib_tokens("words") == ["Hello"]
        assert span.get_attrib_tokens("lemmas") == ["hello"]

    def test_row_and_column_index(self):
        _, _, table = build_tiny_document()
        tabular_sentence = next(iter(table.cells[1].sentences()))
        span = Span(tabular_sentence, 0, 1)
        assert span.row_index == 1
        assert span.column_index == 1
        assert span.is_tabular
