"""Tests for the development-mode error-analysis helpers."""

import numpy as np
import pytest

from repro.pipeline.error_analysis import analyse_errors
from repro.supervision.labeling import LFApplier


@pytest.fixture(scope="module")
def analysis_inputs(electronics_dataset, electronics_candidates):
    candidates, gold = electronics_candidates
    applier = LFApplier(electronics_dataset.labeling_functions)
    label_matrix = applier.apply_dense(candidates)
    # Simple marginals: fraction of positive votes among non-abstains.
    votes = label_matrix.sum(axis=1)
    n_votes = (label_matrix != 0).sum(axis=1)
    marginals = np.where(n_votes > 0, 0.5 + 0.5 * votes / np.maximum(n_votes, 1), 0.5)
    return candidates, gold, marginals, label_matrix, electronics_dataset.labeling_functions


class TestAnalyseErrors:
    def test_buckets_partition_candidates(self, analysis_inputs):
        candidates, gold, marginals, _, _ = analysis_inputs
        analysis = analyse_errors(candidates, marginals, gold)
        n_bucketed = (
            len(analysis.true_positives)
            + len(analysis.false_positives)
            + len(analysis.false_negatives)
        )
        n_true_negatives = int(np.sum((marginals <= 0.5) & (gold == -1)))
        assert n_bucketed + n_true_negatives == len(candidates)

    def test_metrics_match_evaluate_binary(self, analysis_inputs):
        candidates, gold, marginals, _, _ = analysis_inputs
        analysis = analyse_errors(candidates, marginals, gold)
        assert analysis.metrics.true_positives == len(analysis.true_positives)
        assert analysis.metrics.false_positives == len(analysis.false_positives)
        assert analysis.metrics.false_negatives == len(analysis.false_negatives)
        assert analysis.n_errors == len(analysis.false_positives) + len(analysis.false_negatives)

    def test_per_document_breakdown(self, analysis_inputs):
        candidates, gold, marginals, _, _ = analysis_inputs
        analysis = analyse_errors(candidates, marginals, gold)
        assert analysis.per_document
        document_names = {c.document.name for c in candidates}
        assert set(analysis.per_document) <= document_names
        worst = analysis.worst_documents(limit=3)
        assert len(worst) <= 3
        f1_values = [result.f1 for _, result in worst]
        assert f1_values == sorted(f1_values)

    def test_lf_disagreement_attribution(self, analysis_inputs):
        candidates, gold, marginals, label_matrix, lfs = analysis_inputs
        analysis = analyse_errors(
            candidates, marginals, gold, labeling_functions=lfs, label_matrix=label_matrix
        )
        assert set(analysis.lf_disagreements) == {lf.name for lf in lfs}
        ranked = analysis.most_disagreeing_lfs(limit=3)
        counts = [count for _, count in ranked]
        assert counts == sorted(counts, reverse=True)
        # Accurate negative LFs (temperature row) should rarely disagree with gold.
        assert analysis.lf_disagreements["lf_temperature_row"] <= max(counts)

    def test_candidate_error_describe(self, analysis_inputs):
        candidates, gold, marginals, _, _ = analysis_inputs
        analysis = analyse_errors(candidates, marginals, gold)
        errors = analysis.false_positives + analysis.false_negatives
        if errors:
            text = errors[0].describe()
            assert errors[0].bucket in text
            assert errors[0].document_name in text

    def test_summary_lines(self, analysis_inputs):
        candidates, gold, marginals, label_matrix, lfs = analysis_inputs
        analysis = analyse_errors(
            candidates, marginals, gold, labeling_functions=lfs, label_matrix=label_matrix
        )
        lines = analysis.summary_lines()
        assert any("precision=" in line for line in lines)
        assert any(line.startswith("worst documents") for line in lines)
        assert any(line.startswith("LFs most often disagreeing") for line in lines)

    def test_threshold_changes_buckets(self, analysis_inputs):
        candidates, gold, marginals, _, _ = analysis_inputs
        lenient = analyse_errors(candidates, marginals, gold, threshold=0.1)
        strict = analyse_errors(candidates, marginals, gold, threshold=0.9)
        assert len(lenient.false_negatives) <= len(strict.false_negatives)
        assert len(lenient.false_positives) >= len(strict.false_positives)

    def test_input_validation(self, analysis_inputs):
        candidates, gold, marginals, label_matrix, lfs = analysis_inputs
        with pytest.raises(ValueError):
            analyse_errors(candidates, marginals[:-1], gold)
        with pytest.raises(ValueError):
            analyse_errors(
                candidates, marginals, gold, labeling_functions=lfs, label_matrix=label_matrix[:, :2]
            )

    def test_empty_input(self):
        analysis = analyse_errors([], [], [])
        assert analysis.metrics.f1 == 0.0
        assert analysis.n_errors == 0
        assert analysis.worst_documents() == []
