"""Integration tests: the full KBC flow across domains and the headline claims.

These tests exercise the same code paths as the benchmark harness, on small
corpora, and assert the paper's qualitative claims (the "shape" of the
results) rather than absolute numbers:

* Fonduer beats the Text/Table/Ensemble oracle upper bounds on domains whose
  relations are cross-context (Table 2);
* widening the candidate context scope improves quality (Figure 6);
* multimodal supervision beats textual-only supervision (Figure 8);
* Fonduer covers most of an existing curated KB and contributes new correct
  entries (Table 3).
"""

import pytest

from repro.baselines.ensemble import EnsembleBaseline
from repro.candidates.extractor import ContextScope
from repro.datasets import load_dataset
from repro.datasets.existing_kbs import build_existing_kb
from repro.evaluation.kb_compare import compare_knowledge_bases
from repro.pipeline.config import FonduerConfig
from repro.pipeline.fonduer import FonduerPipeline


def run_fonduer(dataset, documents, **config_kwargs):
    pipeline = FonduerPipeline(
        schema=dataset.schema,
        matchers=dataset.matchers,
        labeling_functions=dataset.labeling_functions,
        throttlers=dataset.throttlers,
        config=FonduerConfig(**config_kwargs) if config_kwargs else FonduerConfig(),
    )
    return pipeline.run(documents, gold=dataset.gold_entries)


class TestTable2Shape:
    @pytest.mark.parametrize("name", ["electronics", "paleontology", "genomics"])
    def test_fonduer_beats_ensemble_oracle_on_cross_context_domains(self, name):
        dataset = load_dataset(name, n_docs=10, seed=11)
        documents = dataset.parse_documents()
        fonduer_f1 = run_fonduer(dataset, documents).metrics.f1
        ensemble = EnsembleBaseline(
            dataset.schema.name, {t: dataset.matchers[t] for t in dataset.schema.entity_types}
        )
        ensemble_f1 = ensemble.evaluate_oracle(documents, dataset.gold_entries).metrics.f1
        assert fonduer_f1 > ensemble_f1

    def test_fonduer_competitive_on_ads(self):
        dataset = load_dataset("advertisements", n_docs=12, seed=11)
        documents = dataset.parse_documents()
        result = run_fonduer(dataset, documents)
        assert result.metrics.f1 > 0.5


class TestFigure6Shape:
    def test_quality_grows_with_context_scope(self):
        dataset = load_dataset("electronics", n_docs=10, seed=13)
        documents = dataset.parse_documents()
        scores = {}
        for scope in (ContextScope.SENTENCE, ContextScope.TABLE, ContextScope.DOCUMENT):
            scores[scope] = run_fonduer(dataset, documents, context_scope=scope).metrics.f1
        assert scores[ContextScope.DOCUMENT] >= scores[ContextScope.TABLE]
        assert scores[ContextScope.DOCUMENT] > scores[ContextScope.SENTENCE]


class TestFigure8Shape:
    def test_all_lfs_at_least_metadata_and_beat_textual(self):
        dataset = load_dataset("electronics", n_docs=10, seed=17)
        documents = dataset.parse_documents()

        def run_with_lfs(lfs):
            pipeline = FonduerPipeline(
                schema=dataset.schema,
                matchers=dataset.matchers,
                labeling_functions=lfs,
                throttlers=dataset.throttlers,
            )
            return pipeline.run(documents, gold=dataset.gold_entries).metrics.f1

        all_f1 = run_with_lfs(dataset.labeling_functions)
        textual_f1 = run_with_lfs(dataset.textual_labeling_functions)
        metadata_f1 = run_with_lfs(dataset.metadata_labeling_functions)
        # Figure 8's shape for ELECTRONICS: metadata LFs vastly outperform
        # textual LFs, and the combined pool clearly beats textual-only.  (Our
        # synthetic textual LFs are noisier than real users', so "All" is not
        # required to edge out metadata-only the way it does in the paper.)
        assert metadata_f1 > textual_f1
        assert all_f1 > textual_f1


class TestTable3Shape:
    def test_coverage_and_new_entries_against_existing_kb(self):
        dataset = load_dataset("electronics", n_docs=14, seed=19)
        documents = dataset.parse_documents()
        result = run_fonduer(dataset, documents)
        fonduer_tuples = {t for _, t in result.extracted_entries}
        truth_tuples = dataset.corpus.gold_tuples()
        existing = build_existing_kb(truth_tuples, coverage_of_truth=0.6, foreign_fraction=0.05)
        comparison = compare_knowledge_bases(fonduer_tuples, existing, truth_tuples)
        assert comparison.coverage > 0.5
        assert comparison.accuracy >= 0.45
        assert comparison.n_new_correct_entries > 0
        assert comparison.increase_in_correct_entries > 1.0


class TestGenomicsEndToEnd:
    def test_xml_domain_end_to_end(self):
        dataset = load_dataset("genomics", n_docs=8, seed=23)
        documents = dataset.parse_documents()
        result = run_fonduer(dataset, documents)
        assert result.metrics.f1 > 0.6
        relation = dataset.schema.name
        assert result.kb.size(relation) > 0
        for rsid, phenotype in result.kb.entries(relation):
            assert rsid.startswith("rs")
            assert phenotype in {p.lower() for p in
                                 [r.metadata["phenotype"] for r in dataset.corpus.raw_documents]}
