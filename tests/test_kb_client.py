"""KBClient: the keep-alive Python client of the /v1 serving API."""

from __future__ import annotations

import threading

import pytest

from repro.kb.client import KBAPIError, KBClient
from repro.kb.query import KBQuery
from repro.kb.server import create_server
from repro.kb.store import KBStore

from tests.test_kb_store import make_row, publish_rows


@pytest.fixture
def client(tmp_path):
    store = KBStore(tmp_path / "kb")
    publish_rows(
        store,
        [
            [
                make_row(relation="rel_a", doc="doc0", entities=("alpha", str(i)), candidate=i)
                for i in range(7)
            ],
            [make_row(relation="rel_b", doc="doc1", entities=("beta", "9"), candidate=7)],
        ],
    )
    server = create_server(tmp_path / "kb", port=0, store=store)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    kb_client = KBClient(server.url)
    try:
        yield store, server, kb_client
    finally:
        kb_client.close()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestKBClient:
    def test_query_matches_the_in_process_result(self, client):
        store, _, kb_client = client
        local = store.snapshot().query(KBQuery(relation="rel_a"))
        remote = kb_client.query(relation="rel_a")
        assert remote.to_json() == local.to_json()
        assert kb_client.last_meta["generation"] == store.snapshot().generation

    def test_query_accepts_a_query_object_or_kwargs_not_both(self, client):
        _, _, kb_client = client
        by_object = kb_client.query(KBQuery(relation="rel_b"))
        by_kwargs = kb_client.query(relation="rel_b")
        assert by_object.rows == by_kwargs.rows
        with pytest.raises(TypeError):
            kb_client.query(KBQuery(), relation="rel_b")

    def test_query_pages_walks_every_row_once(self, client):
        _, _, kb_client = client
        seen = []
        versions = set()
        for page in kb_client.query_pages(KBQuery(limit=3)):
            seen.extend(row["candidate"] for row in page.rows)
            versions.add(page.version)
        assert seen == list(range(8))
        assert versions == {1}

    def test_structured_errors_surface_as_kbapierror(self, client):
        _, _, kb_client = client
        with pytest.raises(KBAPIError) as excinfo:
            kb_client.query_params({"limit": "0"})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_request"
        assert "limit" in excinfo.value.message
        with pytest.raises(KBAPIError) as excinfo:
            kb_client.query_params({"offset": "3"})
        assert "cursor" in excinfo.value.message

    def test_diagnostics_endpoints(self, client):
        store, _, kb_client = client
        stats = kb_client.stats()
        assert stats["n_tuples"] == 8
        assert stats["generation"] == store.snapshot().generation
        assert kb_client.health()["status"] == "ok"
        metrics = kb_client.metrics()
        # Every call above shared the client's one keep-alive connection.
        assert metrics["connections"]["total"] == 1

    def test_client_reconnects_after_the_server_drops_the_connection(self, client):
        _, server, kb_client = client
        assert kb_client.query(limit=1).total == 8
        # The server reaps the idle connection (simulated directly);
        # the next call must silently reconnect, not raise.
        for protocol in list(server._connections):
            protocol.transport.close()
        assert kb_client.query(limit=1).total == 8

    def test_rejects_non_http_urls(self):
        with pytest.raises(ValueError):
            KBClient("https://example.com")
        with pytest.raises(ValueError):
            KBClient("http://")
