"""``python -m repro verify [--repair]``: detection → quarantine → re-derivation.

One corruption round-trip per artifact class the stores persist: the shard
manifest, checkpoint records, pickled slabs (docs/candidates), JSON sidecars,
npz/npy slabs, KB segments and the snapshot pointer.  Each case corrupts one
pristine artifact on disk, asserts ``verify`` detects it (exit 1), then
asserts ``verify --repair`` quarantines the evidence and re-derives the
artifact to *byte-identical* state (exit 0).
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro.__main__ import main
from repro.datasets import load_dataset
from repro.datasets.base import write_corpus_dir
from repro.storage.integrity import CorruptArtifactError
from repro.storage.shards import ShardStore


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """One completed streaming run (corpus dir + workdir), never mutated."""
    root = tmp_path_factory.mktemp("pristine")
    corpus = root / "corpus"
    dataset = load_dataset("electronics", n_docs=6, seed=0)
    write_corpus_dir(dataset.corpus, corpus)
    workdir = root / "work"
    rc = main(
        [
            "stream",
            "--dataset",
            "electronics",
            "--corpus-dir",
            str(corpus),
            "--workdir",
            str(workdir),
            "--shard-size",
            "2",
            "--quiet",
        ]
    )
    assert rc == 0
    return corpus, workdir


def flip_byte(path):
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0x40
    path.write_bytes(bytes(data))


def truncate(path):
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])


def scribble(path):
    path.write_text("{not json", encoding="utf-8")


#: (case id, glob under the workdir, mutation) — one per artifact class.
CASES = [
    ("manifest", "manifest.json", scribble),
    ("stage-records", "shards/shard-00001-*/stages.json", scribble),
    ("docs-pickle", "shards/shard-00001-*/docs.pkl", flip_byte),
    ("candidates-pickle", "shards/shard-00001-*/candidates.pkl", truncate),
    ("candidates-meta", "shards/shard-00001-*/candidates_meta.json", flip_byte),
    ("features-npz", "shards/shard-00001-*/features.npz", flip_byte),
    ("labels-npy", "shards/shard-00001-*/labels.npy", flip_byte),
    ("marginals-npy", "shards/shard-00001-*/marginals.npy", flip_byte),
    ("kb-segment", "kb/segments/seg-*.json", truncate),
    ("snapshot-pointer", "kb/snapshot.json", scribble),
]


@pytest.mark.parametrize(
    "pattern,mutate", [case[1:] for case in CASES], ids=[case[0] for case in CASES]
)
class TestVerifyRepairRoundTrip:
    def test_detect_quarantine_repair(self, pristine, tmp_path, pattern, mutate):
        corpus, pristine_workdir = pristine
        workdir = tmp_path / "work"
        shutil.copytree(pristine_workdir, workdir)
        target = sorted(workdir.glob(pattern))[0]
        intact = target.read_bytes()
        mutate(target)
        assert target.read_bytes() != intact

        # Read-only audit: corruption detected, nonzero exit.
        assert main(["verify", "--workdir", str(workdir)]) == 1

        # Repair: quarantine + re-derive through the stage key chain.
        rc = main(
            [
                "verify",
                "--workdir",
                str(workdir),
                "--repair",
                "--corpus-dir",
                str(corpus),
                "--shard-size",
                "2",
            ]
        )
        assert rc == 0

        if pattern.endswith("snapshot.json"):
            # The pointer is re-published, not restored from quarantine: the
            # re-derived version must reference the identical segment set.
            repaired = json.loads(target.read_text())
            original = json.loads(intact.decode("utf-8"))
            assert repaired["segments"] == original["segments"]
        else:
            assert target.read_bytes() == intact

        # The audit now comes back clean.
        assert main(["verify", "--workdir", str(workdir)]) == 0

    def test_quarantine_preserves_the_evidence(
        self, pristine, tmp_path, pattern, mutate
    ):
        corpus, pristine_workdir = pristine
        workdir = tmp_path / "work"
        shutil.copytree(pristine_workdir, workdir)
        target = sorted(workdir.glob(pattern))[0]
        mutate(target)
        corrupted = target.read_bytes()
        rc = main(
            [
                "verify",
                "--workdir",
                str(workdir),
                "--repair",
                "--corpus-dir",
                str(corpus),
                "--shard-size",
                "2",
            ]
        )
        assert rc == 0
        quarantine_roots = [workdir / "quarantine", workdir / "kb" / "quarantine"]
        held = [
            path.read_bytes()
            for root in quarantine_roots
            if root.exists()
            for path in root.iterdir()
        ]
        if pattern.endswith("snapshot.json"):
            # A corrupt pointer is replaced by republication; quarantining is
            # the concern of the serving path (KBStore.snapshot), not verify.
            return
        assert corrupted in held


class TestResumeSelfHeals:
    def test_plain_resume_heals_corrupt_slab(self, pristine, tmp_path, capsys):
        """No verify CLI needed: re-running the stream detects and recomputes."""
        corpus, pristine_workdir = pristine
        workdir = tmp_path / "work"
        shutil.copytree(pristine_workdir, workdir)
        target = sorted(workdir.glob("shards/shard-00000-*/features.npz"))[0]
        intact = target.read_bytes()
        flip_byte(target)
        rc = main(
            [
                "stream",
                "--dataset",
                "electronics",
                "--corpus-dir",
                str(corpus),
                "--workdir",
                str(workdir),
                "--shard-size",
                "2",
                "--quiet",
                "--integrity",
                "always",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Integrity:" in out
        assert target.read_bytes() == intact


class TestVerifyCLIEdges:
    def test_missing_workdir_is_exit_2(self, tmp_path):
        assert main(["verify", "--workdir", str(tmp_path / "nope")]) == 2

    def test_repair_without_corpus_is_exit_2(self, pristine, tmp_path):
        _, pristine_workdir = pristine
        workdir = tmp_path / "work"
        shutil.copytree(pristine_workdir, workdir)
        flip_byte(sorted(workdir.glob("shards/shard-00000-*/docs.pkl"))[0])
        assert main(["verify", "--workdir", str(workdir), "--repair"]) == 2

    def test_json_report(self, pristine, tmp_path, capsys):
        _, pristine_workdir = pristine
        workdir = tmp_path / "work"
        shutil.copytree(pristine_workdir, workdir)
        assert main(["verify", "--workdir", str(workdir), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is True
        assert report["shards"]["n_stages"] == report["shards"]["n_ok"]
        assert report["kb"]["pointer"] == "ok"


class TestCorruptionWithoutRepairer:
    def test_load_raises_with_quarantine_context(self, pristine, tmp_path):
        """A bare store (no pipeline, no repairer) contains and raises."""
        _, pristine_workdir = pristine
        workdir = tmp_path / "work"
        shutil.copytree(pristine_workdir, workdir)
        store = ShardStore(workdir, integrity="always")
        shards = store.open_existing()
        target = sorted(workdir.glob("shards/shard-00000-*/docs.pkl"))[0]
        flip_byte(target)
        with pytest.raises(CorruptArtifactError) as excinfo:
            store.load_docs(shards[0])
        assert excinfo.value.quarantined_to is not None
        assert not target.exists()
        assert excinfo.value.quarantined_to.exists()
