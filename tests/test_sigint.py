"""Graceful SIGINT: exit code 130, no traceback, checkpointed resume.

Ctrl-C on a streaming/training run must leave a resumable workdir behind and
exit with the conventional ``128 + SIGINT`` status; Ctrl-C on ``serve`` must
shut the listener down cleanly.  These run the real CLI in a subprocess —
signal delivery timing, handler installation and process exit codes are not
observable in-process.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.datasets import load_dataset
from repro.datasets.base import write_corpus_dir

SRC_DIR = Path(__file__).resolve().parents[1] / "src"


def spawn(args, cwd):
    env = dict(os.environ, PYTHONPATH=str(SRC_DIR), PYTHONUNBUFFERED="1")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def wait_until(predicate, timeout=60.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    root = tmp_path_factory.mktemp("corpus")
    dataset = load_dataset("electronics", n_docs=20, seed=0)
    write_corpus_dir(dataset.corpus, root)
    return root


def stream_args(corpus, workdir):
    return [
        "--dataset",
        "electronics",
        "--corpus-dir",
        str(corpus),
        "--workdir",
        str(workdir),
        "--shard-size",
        "2",
        "--quiet",
    ]


class TestStreamInterrupt:
    def test_sigint_exits_130_and_resumes(self, corpus, tmp_path):
        workdir = tmp_path / "work"
        proc = spawn(["stream", *stream_args(corpus, workdir)], cwd=tmp_path)
        try:
            # Interrupt only after the first boundary is checkpointed, so the
            # resume run demonstrably picks work back up.
            assert wait_until(
                lambda: any(workdir.glob("shards/*/stages.json")),
                timeout=120.0,
            ), "no checkpoint appeared before the timeout"
            proc.send_signal(signal.SIGINT)
            _, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130
        assert "Traceback" not in stderr
        assert "re-run the same command to resume" in stderr

        # The interrupted workdir resumes: the second run completes and at
        # least one boundary comes from the interrupted run's checkpoints.
        done = subprocess.run(
            [sys.executable, "-m", "repro", "stream", *stream_args(corpus, workdir)],
            cwd=tmp_path,
            env=dict(os.environ, PYTHONPATH=str(SRC_DIR)),
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert done.returncode == 0, done.stderr
        match = re.search(r"Boundaries: (\d+) computed, (\d+) resumed", done.stdout)
        assert match, done.stdout
        assert int(match.group(2)) > 0

    def test_train_sigint_exits_130(self, corpus, tmp_path):
        workdir = tmp_path / "work"
        proc = spawn(["train", *stream_args(corpus, workdir)], cwd=tmp_path)
        try:
            assert wait_until(
                lambda: any(workdir.glob("shards/*/stages.json")),
                timeout=120.0,
            ), "no checkpoint appeared before the timeout"
            proc.send_signal(signal.SIGINT)
            _, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130
        assert "Traceback" not in stderr


class TestServeInterrupt:
    def test_sigint_shuts_down_cleanly(self, tmp_path):
        kb_dir = tmp_path / "kb"
        kb_dir.mkdir()
        proc = spawn(
            ["serve", "--kb-dir", str(kb_dir), "--port", "0"], cwd=tmp_path
        )
        try:
            banner = proc.stdout.readline()
            assert "Serving KB snapshot" in banner
            proc.send_signal(signal.SIGINT)
            _, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130
        assert "Traceback" not in stderr
