"""The HTTP serving layer and the serve/query CLI surfaces."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from urllib.parse import urlencode

import pytest

from repro.kb.query import KBQuery
from repro.kb.server import create_server
from repro.kb.store import KBStore

from tests.test_kb_store import make_row, publish_rows


@pytest.fixture
def served_store(tmp_path):
    store = KBStore(tmp_path / "kb")
    publish_rows(
        store,
        [
            [
                make_row(relation="rel_a", doc="doc0", entities=("alpha", "1"), candidate=0),
                make_row(relation="rel_b", doc="doc0", entities=("beta", "2"), marginal=0.6, candidate=1),
            ],
            [make_row(relation="rel_a", doc="doc1", entities=("alpha", "3"), candidate=2)],
        ],
    )
    server = create_server(tmp_path / "kb", port=0, store=store)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield store, server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def http_get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


class TestHTTPEndpoints:
    def test_query_endpoint_filters_and_paginates(self, served_store):
        _, server = served_store
        status, payload = http_get(f"{server.url}/query?relation=rel_a")
        assert status == 200
        assert payload["total"] == 2
        assert [row["candidate"] for row in payload["rows"]] == [0, 2]
        status, payload = http_get(
            f"{server.url}/query?" + urlencode({"entity": "alpha", "limit": 1})
        )
        assert payload["total"] == 2 and len(payload["rows"]) == 1
        assert payload["has_more"] is True
        status, payload = http_get(
            f"{server.url}/query?" + urlencode({"min_marginal": 0.7})
        )
        assert payload["total"] == 2

    def test_stats_and_health(self, served_store):
        _, server = served_store
        status, stats = http_get(f"{server.url}/stats")
        assert status == 200
        assert stats["version"] == 1 and stats["n_tuples"] == 3
        assert stats["relations"] == {"rel_a": 2, "rel_b": 1}
        assert len(stats["segments"]) == 2
        status, health = http_get(f"{server.url}/health")
        assert status == 200 and health["status"] == "ok"

    def test_bad_parameter_is_400_not_500(self, served_store):
        _, server = served_store
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_get(f"{server.url}/query?limit=0")
        assert excinfo.value.code == 400
        assert "limit" in json.loads(excinfo.value.read().decode())["error"]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_get(f"{server.url}/query?relaton=typo")
        assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, served_store):
        _, server = served_store
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_get(f"{server.url}/nope")
        assert excinfo.value.code == 404

    def test_republication_visible_without_restart(self, served_store, tmp_path):
        store, server = served_store
        # Another process (modelled by a second store handle) republishes.
        writer = KBStore(store.root)
        publish_rows(writer, [[make_row(candidate=7)]], key_prefix="new")
        _, payload = http_get(f"{server.url}/query")
        assert payload["version"] == 2 and payload["total"] == 1

    def test_concurrent_http_readers_during_upserts_stay_consistent(
        self, served_store
    ):
        store, server = served_store
        errors = []
        done = threading.Event()
        # Each generation publishes rows that all carry one marginal derived
        # from the snapshot version it lands as (fixture seed is v1, so
        # generation g publishes as version g+2), so a response mixing
        # generations is detectable from one request — no shared state
        # between writer and readers.
        writer = KBStore(store.root)

        def expected_marginal(version: int) -> float:
            return round(0.5 + (version - 2) / 100, 4)

        def publish_generation(generation: int) -> None:
            marginal = expected_marginal(generation + 2)
            rows = [make_row(candidate=i, marginal=marginal) for i in range(3)]
            snapshot = publish_rows(writer, [rows], key_prefix=f"gen{generation}")
            assert snapshot.version == generation + 2

        publish_generation(0)  # replace the fixture's mixed-marginal seed

        def reader():
            while not done.is_set():
                _, payload = http_get(f"{server.url}/query?limit=1000")
                marginals = {row["marginal"] for row in payload["rows"]}
                if payload["total"] != len(payload["rows"]):
                    errors.append("total/rows mismatch")
                if marginals != {expected_marginal(payload["version"])}:
                    errors.append(
                        f"v{payload['version']} served marginals {marginals}"
                    )

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for generation in range(1, 6):
            publish_generation(generation)
        done.set()
        for thread in threads:
            thread.join()
        assert errors == []


class TestCLI:
    def test_query_cli_local(self, tmp_path, capsys):
        from repro.__main__ import main

        store = KBStore(tmp_path / "work" / "kb")
        publish_rows(store, [[make_row(entities=("widget", "42"))]])
        exit_code = main(
            ["query", "--workdir", str(tmp_path / "work"), "--entity", "widget", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 1
        assert payload["rows"][0]["entities"] == ["widget", "42"]

    def test_query_cli_pretty_output(self, tmp_path, capsys):
        from repro.__main__ import main

        store = KBStore(tmp_path / "kb")
        publish_rows(store, [[make_row(entities=("widget", "42"))]])
        assert main(["query", "--kb-dir", str(tmp_path / "kb")]) == 0
        out = capsys.readouterr().out
        assert "1 matching tuples" in out
        assert "has_current(widget, 42)" in out

    def test_query_cli_against_running_server(self, served_store, capsys):
        from repro.__main__ import main

        _, server = served_store
        assert main(["query", "--url", server.url, "--relation", "rel_b", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 1
        assert payload["rows"][0]["relation"] == "rel_b"

    def test_query_cli_requires_a_target(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["query", "--entity", "x"])

    def test_snapshot_query_kwargs_shorthand(self, tmp_path):
        store = KBStore(tmp_path / "kb")
        snapshot = publish_rows(store, [[make_row()]])
        assert snapshot.query(relation="has_current").total == 1
        with pytest.raises(TypeError):
            snapshot.query(KBQuery(), relation="has_current")


@pytest.fixture
def hardened_server(tmp_path):
    """A served store with tight limits, built fresh per test."""

    def build(**server_kwargs):
        store = KBStore(tmp_path / "kb")
        publish_rows(
            store,
            [[make_row(relation="rel_a", doc="doc0", candidate=i) for i in range(20)]],
        )
        server = create_server(tmp_path / "kb", port=0, store=store, **server_kwargs)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append((server, thread))
        return store, server

    servers = []
    try:
        yield build
    finally:
        for server, thread in servers:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestServingDegradation:
    def test_write_methods_get_json_405_with_allow_header(self, served_store):
        _, server = served_store
        for method in ("POST", "PUT", "DELETE", "PATCH"):
            request = urllib.request.Request(
                f"{server.url}/query", data=b"{}", method=method
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 405
            assert excinfo.value.headers["Allow"] == "GET"
            body = json.loads(excinfo.value.read().decode("utf-8"))
            assert "read-only" in body["error"]

    def test_load_shedding_503_with_retry_after(self, hardened_server):
        _, server = hardened_server(max_inflight=1)
        # Occupy the only slot, as a stuck in-flight request would.
        assert server.acquire_slot()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                http_get(f"{server.url}/query")
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] == "1"
        finally:
            server.release_slot()
        # Slot freed: the next request is served normally, and the shed
        # request is visible in the health counters.
        status, payload = http_get(f"{server.url}/query")
        assert status == 200 and payload["total"] == 20
        _, health = http_get(f"{server.url}/health")
        assert health["n_shed"] >= 1

    def test_request_deadline_times_out_as_504(self, hardened_server):
        _, server = hardened_server(request_deadline=0.0)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_get(f"{server.url}/query")
        assert excinfo.value.code == 504
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert "deadline" in body["error"].lower()
        # /health carries no query deadline, so it still answers — and it
        # reports the timed-out request.
        server.request_deadline = None
        _, health = http_get(f"{server.url}/health")
        assert health["n_deadline_exceeded"] >= 1

    def test_corrupt_pointer_falls_back_to_last_good_generation(
        self, hardened_server
    ):
        store, server = hardened_server()
        writer = KBStore(store.root)
        publish_rows(writer, [[make_row(candidate=99)]], key_prefix="v2")
        _, payload = http_get(f"{server.url}/query")
        assert payload["version"] == 2
        # The current pointer is torn mid-write; serving rolls back to the
        # previous generation instead of 500ing, and /health says so.
        (store.root / "snapshot.json").write_text("{torn")
        status, payload = http_get(f"{server.url}/query")
        assert status == 200
        assert payload["version"] == 1
        _, health = http_get(f"{server.url}/health")
        assert health["status"] == "degraded"
        assert health["n_quarantined"] >= 1
        assert "rolled back to last-good version 1" in health["reason"]
        # A fresh publication clears the degradation.
        publish_rows(writer, [[make_row(candidate=100)]], key_prefix="v3")
        _, health = http_get(f"{server.url}/health")
        assert health["status"] == "ok"

    def test_client_disconnect_does_not_wedge_the_server(self, served_store):
        import socket

        _, server = served_store
        host, port = server.address
        # Hang up mid-request, twice: once before sending anything and once
        # right after the request line, without ever reading the response.
        for payload in (b"", b"GET /query HTTP/1.1\r\nHost: x\r\n\r\n"):
            with socket.create_connection((host, port), timeout=5) as sock:
                if payload:
                    sock.send(payload)
        status, body = http_get(f"{server.url}/query")
        assert status == 200 and body["total"] == 3

    def test_query_cli_unreachable_url_exits_3(self, capsys):
        from repro.__main__ import main

        rc = main(
            [
                "query",
                "--url",
                "http://127.0.0.1:9",
                "--retries",
                "2",
                "--timeout",
                "0.5",
            ]
        )
        assert rc == 3
        err = capsys.readouterr().err
        assert "no response" in err and "2 attempts" in err
        assert "is the server up?" in err
