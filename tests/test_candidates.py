"""Tests for candidate generation: matchers, mention spaces, throttlers, extractor."""

import pytest

from repro.candidates.extractor import CandidateExtractor, ContextScope
from repro.candidates.matchers import (
    DictionaryMatcher,
    IntersectionMatcher,
    LambdaFunctionMatcher,
    NerMatcher,
    NumberMatcher,
    RegexMatcher,
    UnionMatcher,
)
from repro.candidates.mentions import Candidate, Mention
from repro.candidates.ngrams import MentionNgrams
from repro.candidates.throttlers import all_throttlers, any_throttler, apply_throttlers, inverted


def spans_of(document):
    return list(MentionNgrams(n_max=2).iter_spans(document))


def span_with_text(document, text):
    for span in MentionNgrams(n_max=3).iter_spans(document):
        if span.text() == text:
            return span
    raise AssertionError(f"No span {text!r}")


class TestMatchers:
    def test_regex_full_match(self, datasheet_document):
        matcher = RegexMatcher(r"[A-Z]{3,5}\d{4}")
        assert matcher.matches(span_with_text(datasheet_document, "SMBT3904"))
        assert not matcher.matches(span_with_text(datasheet_document, "Collector"))

    def test_regex_search_mode(self, datasheet_document):
        matcher = RegexMatcher(r"390", full_match=False)
        assert matcher.matches(span_with_text(datasheet_document, "SMBT3904"))

    def test_dictionary_matcher_case_insensitive(self, datasheet_document):
        matcher = DictionaryMatcher(["collector current", "emitter"])
        assert matcher.matches(span_with_text(datasheet_document, "Collector current"))
        assert len(matcher) == 2

    def test_dictionary_matcher_case_sensitive(self, datasheet_document):
        matcher = DictionaryMatcher(["collector current"], ignore_case=False)
        assert not matcher.matches(span_with_text(datasheet_document, "Collector current"))

    def test_number_matcher_range(self, datasheet_document):
        matcher = NumberMatcher(minimum=100, maximum=995)
        assert matcher.matches(span_with_text(datasheet_document, "200"))
        assert not matcher.matches(span_with_text(datasheet_document, "40"))
        assert not matcher.matches(span_with_text(datasheet_document, "Collector"))

    def test_ner_matcher(self, datasheet_document):
        matcher = NerMatcher("NUMBER")
        assert matcher.matches(span_with_text(datasheet_document, "200"))
        assert not matcher.matches(span_with_text(datasheet_document, "Collector"))

    def test_lambda_matcher_multimodal(self, datasheet_document):
        matcher = LambdaFunctionMatcher(lambda span: span.is_tabular)
        assert matcher.matches(span_with_text(datasheet_document, "200"))
        assert not matcher.matches(span_with_text(datasheet_document, "SMBT3904"))

    def test_union_and_intersection(self, datasheet_document):
        numbers = NumberMatcher()
        tabular = LambdaFunctionMatcher(lambda span: span.is_tabular)
        union = numbers | LambdaFunctionMatcher(lambda span: span.text() == "SMBT3904")
        intersection = numbers & tabular
        assert union.matches(span_with_text(datasheet_document, "SMBT3904"))
        assert union.matches(span_with_text(datasheet_document, "200"))
        assert intersection.matches(span_with_text(datasheet_document, "200"))
        assert not intersection.matches(span_with_text(datasheet_document, "SMBT3904"))

    def test_empty_combinators_rejected(self):
        with pytest.raises(ValueError):
            UnionMatcher()
        with pytest.raises(ValueError):
            IntersectionMatcher()

    def test_filter_spans(self, datasheet_document):
        matcher = NumberMatcher(minimum=100)
        spans = list(matcher.filter_spans(MentionNgrams(n_max=1).iter_spans(datasheet_document)))
        assert all(float(s.text()) >= 100 for s in spans)
        assert spans


class TestMentionNgrams:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            MentionNgrams(n_max=0)
        with pytest.raises(ValueError):
            MentionNgrams(n_max=1, n_min=2)
        with pytest.raises(ValueError):
            MentionNgrams(tabular_only=True, non_tabular_only=True)

    def test_unigram_count_equals_word_count(self, datasheet_document):
        total_words = sum(len(s.words) for s in datasheet_document.sentences())
        assert MentionNgrams(n_max=1).count(datasheet_document) == total_words

    def test_larger_n_yields_more_spans(self, datasheet_document):
        assert MentionNgrams(n_max=2).count(datasheet_document) > MentionNgrams(n_max=1).count(
            datasheet_document
        )

    def test_tabular_only(self, datasheet_document):
        spans = list(MentionNgrams(n_max=1, tabular_only=True).iter_spans(datasheet_document))
        assert spans and all(s.is_tabular for s in spans)

    def test_non_tabular_only(self, datasheet_document):
        spans = list(MentionNgrams(n_max=1, non_tabular_only=True).iter_spans(datasheet_document))
        assert spans and all(not s.is_tabular for s in spans)


class TestMentionAndCandidate:
    def test_mention_normalization(self, datasheet_document):
        mention = Mention("part", span_with_text(datasheet_document, "SMBT3904"))
        assert mention.normalized() == "smbt3904"
        assert mention.text == "SMBT3904"

    def test_candidate_accessors(self, datasheet_document):
        part = Mention("transistor_part", span_with_text(datasheet_document, "SMBT3904"))
        current = Mention("current", span_with_text(datasheet_document, "200"))
        candidate = Candidate("has_collector_current", [part, current])
        assert candidate[0] is part
        assert candidate["current"] is current
        assert candidate.current is current  # attribute-style access
        assert candidate.arity == 2
        assert candidate.entity_tuple == ("smbt3904", "200")

    def test_candidate_requires_mentions(self):
        with pytest.raises(ValueError):
            Candidate("r", [])

    def test_candidate_equality(self, datasheet_document):
        part = Mention("p", span_with_text(datasheet_document, "SMBT3904"))
        current = Mention("c", span_with_text(datasheet_document, "200"))
        a = Candidate("r", [part, current])
        b = Candidate("r", [part, current])
        assert a == b and hash(a) == hash(b)

    def test_unknown_attribute_raises(self, datasheet_document):
        part = Mention("p", span_with_text(datasheet_document, "SMBT3904"))
        candidate = Candidate("r", [part])
        with pytest.raises(AttributeError):
            _ = candidate.nonexistent


class TestContextScope:
    def test_scope_compatibility(self, datasheet_document):
        part = span_with_text(datasheet_document, "SMBT3904")
        current = span_with_text(datasheet_document, "200")
        ic = span_with_text(datasheet_document, "IC")
        assert ContextScope.DOCUMENT.compatible([part, current])
        assert ContextScope.PAGE.compatible([part, current])
        assert not ContextScope.SENTENCE.compatible([part, current])
        assert not ContextScope.TABLE.compatible([part, current])
        assert ContextScope.TABLE.compatible([ic, current])
        assert not ContextScope.SENTENCE.compatible([ic, current])

    def test_single_span_always_compatible(self, datasheet_document):
        part = span_with_text(datasheet_document, "SMBT3904")
        assert ContextScope.SENTENCE.compatible([part])


class TestThrottlers:
    def _candidates(self, datasheet_document):
        extractor = CandidateExtractor(
            "has_collector_current",
            {
                "transistor_part": RegexMatcher(r"(?:SMBT|MMBT)\d{4}"),
                "current": NumberMatcher(minimum=100, maximum=995),
            },
        )
        return extractor.extract_from_document(datasheet_document).candidates

    def test_combinators(self, datasheet_document):
        candidates = self._candidates(datasheet_document)
        keep_all = lambda c: True
        keep_none = lambda c: False
        assert list(apply_throttlers(candidates, [all_throttlers(keep_all, keep_all)]))
        assert not list(apply_throttlers(candidates, [all_throttlers(keep_all, keep_none)]))
        assert list(apply_throttlers(candidates, [any_throttler(keep_none, keep_all)]))
        assert not list(apply_throttlers(candidates, [inverted(keep_all)]))

    def test_throttler_reduces_candidates(self, datasheet_document):
        candidates = self._candidates(datasheet_document)
        def only_200(candidate):
            return candidate.get_mention("current").text == "200"
        kept = list(apply_throttlers(candidates, [only_200]))
        assert 0 < len(kept) < len(candidates)


class TestCandidateExtractor:
    def make_extractor(self, **kwargs):
        return CandidateExtractor(
            "has_collector_current",
            {
                "transistor_part": RegexMatcher(r"(?:SMBT|MMBT)\d{4}"),
                "current": NumberMatcher(minimum=100, maximum=995),
            },
            **kwargs,
        )

    def test_mention_extraction(self, datasheet_document):
        mentions = self.make_extractor().extract_mentions(datasheet_document)
        assert {m.text for m in mentions["transistor_part"]} == {"SMBT3904", "MMBT3904"}
        current_texts = {m.text for m in mentions["current"]}
        assert "200" in current_texts
        assert "330" in current_texts  # dissipation distractor
        assert "40" not in current_texts  # below the matcher's range

    def test_cross_product_candidates(self, datasheet_document):
        result = self.make_extractor().extract_from_document(datasheet_document)
        parts = {c.get_mention("transistor_part").text for c in result.candidates}
        assert parts == {"SMBT3904", "MMBT3904"}
        assert result.n_raw_candidates == len(result.candidates)
        assert result.n_throttled == 0

    def test_sentence_scope_excludes_cross_context(self, datasheet_document):
        result = self.make_extractor(context_scope=ContextScope.SENTENCE).extract_from_document(
            datasheet_document
        )
        assert result.n_candidates == 0

    def test_table_scope_excludes_header_parts(self, datasheet_document):
        result = self.make_extractor(context_scope=ContextScope.TABLE).extract_from_document(
            datasheet_document
        )
        assert result.n_candidates == 0  # parts are never inside the table

    def test_throttler_statistics(self, datasheet_document):
        def keep_only_200(candidate):
            return candidate.get_mention("current").text == "200"
        extractor = self.make_extractor(throttlers=[keep_only_200])
        result = extractor.extract_from_document(datasheet_document)
        assert result.n_throttled > 0
        assert result.throttle_ratio > 0
        assert all(c.get_mention("current").text == "200" for c in result.candidates)

    def test_overlapping_mentions_deduplicated(self, datasheet_document):
        extractor = CandidateExtractor(
            "r",
            {"anything": RegexMatcher(r"(Collector|Collector current)", full_match=True)},
            mention_space=MentionNgrams(n_max=2),
        )
        mentions = extractor.extract_mentions(datasheet_document)["anything"]
        texts = [m.text for m in mentions]
        # "Collector" alone inside "Collector current" must be subsumed.
        assert "Collector current" in texts
        for mention in mentions:
            if mention.text == "Collector":
                words = mention.span.sentence.words
                assert words[mention.span.word_end : mention.span.word_end + 1] != ["current"]

    def test_corpus_level_aggregation(self, electronics_dataset, electronics_documents):
        dataset = electronics_dataset
        extractor = CandidateExtractor(
            dataset.schema.name,
            {t: dataset.matchers[t] for t in dataset.schema.entity_types},
        )
        result = extractor.extract(electronics_documents)
        assert result.n_candidates > 0
        assert set(result.mentions_by_type) == set(dataset.schema.entity_types)

    def test_empty_matcher_dict_rejected(self):
        with pytest.raises(ValueError):
            CandidateExtractor("r", {})


class TestIndexedPathEquivalence:
    """The partitioned (indexed) and generate-then-filter (legacy) extraction
    paths must produce byte-identical candidate sets and exact statistics."""

    def _extract(self, dataset, documents, scope, use_index, throttled=True):
        extractor = CandidateExtractor(
            dataset.schema.name,
            {t: dataset.matchers[t] for t in dataset.schema.entity_types},
            throttlers=dataset.throttlers if throttled else None,
            context_scope=scope,
            use_index=use_index,
        )
        return extractor.extract(documents)

    @pytest.mark.parametrize("scope", list(ContextScope))
    def test_candidates_identical_across_paths(
        self, electronics_dataset, electronics_documents, scope
    ):
        fast = self._extract(electronics_dataset, electronics_documents, scope, True)
        legacy = self._extract(electronics_dataset, electronics_documents, scope, False)
        assert [c.spans for c in fast.candidates] == [c.spans for c in legacy.candidates]
        assert fast.mentions_by_type == legacy.mentions_by_type

    @pytest.mark.parametrize("scope", list(ContextScope))
    def test_statistics_exact_across_paths(
        self, electronics_dataset, electronics_documents, scope
    ):
        """Tuples never generated by the partitioned product are tuples the
        legacy path rejected *before* counting them raw — so raw/throttled
        counts agree exactly, and raw always equals kept + throttled."""
        fast = self._extract(electronics_dataset, electronics_documents, scope, True)
        legacy = self._extract(electronics_dataset, electronics_documents, scope, False)
        assert fast.n_raw_candidates == legacy.n_raw_candidates
        assert fast.n_throttled == legacy.n_throttled
        for result in (fast, legacy):
            assert result.n_raw_candidates == result.n_candidates + result.n_throttled

    @pytest.mark.parametrize("scope", list(ContextScope))
    def test_xml_corpus_identical_across_paths(
        self, genomics_dataset, genomics_documents, scope
    ):
        """XML documents have no visual modality (no pages): the page-scope
        partitioning must degrade exactly like the legacy predicate."""
        fast = self._extract(genomics_dataset, genomics_documents, scope, True)
        legacy = self._extract(genomics_dataset, genomics_documents, scope, False)
        assert [c.spans for c in fast.candidates] == [c.spans for c in legacy.candidates]
        assert fast.n_raw_candidates == legacy.n_raw_candidates
        assert fast.n_throttled == legacy.n_throttled

    def test_merge_aggregates_statistics_exactly(
        self, electronics_dataset, electronics_documents
    ):
        from repro.candidates.extractor import ExtractionResult

        extractor = CandidateExtractor(
            electronics_dataset.schema.name,
            {
                t: electronics_dataset.matchers[t]
                for t in electronics_dataset.schema.entity_types
            },
            throttlers=electronics_dataset.throttlers,
        )
        per_document = [
            extractor.extract_from_document(d) for d in electronics_documents
        ]
        merged = ExtractionResult.merge(per_document)
        assert merged.n_raw_candidates == sum(r.n_raw_candidates for r in per_document)
        assert merged.n_throttled == sum(r.n_throttled for r in per_document)
        assert merged.n_candidates == sum(r.n_candidates for r in per_document)
        assert merged.n_raw_candidates == merged.n_candidates + merged.n_throttled


class TestTextMemoizationSafety:
    def test_subclass_overriding_matches_is_not_memoized(self, datasheet_document):
        """A subclass that overrides matches() while inheriting text_only=True
        must be dispatched through matches(), never the text memo."""
        from repro.candidates.matchers import RegexMatcher, supports_text_memoization

        class TabularRegexMatcher(RegexMatcher):
            def matches(self, span):
                return span.is_tabular and super().matches(span)

        override = TabularRegexMatcher(r".*")
        assert override.text_only  # inherited declaration...
        assert not supports_text_memoization(override)  # ...but not memo-safe

        extractor = CandidateExtractor("r", {"anything": override})
        mentions = extractor.extract_mentions(datasheet_document)["anything"]
        assert mentions and all(m.span.is_tabular for m in mentions)

    def test_library_matchers_and_combinators_are_memo_safe(self):
        from repro.candidates.matchers import (
            DictionaryMatcher,
            LambdaFunctionMatcher,
            NumberMatcher,
            RegexMatcher,
            supports_text_memoization,
        )

        regex = RegexMatcher(r"\d+")
        assert supports_text_memoization(regex)
        assert supports_text_memoization(NumberMatcher())
        assert supports_text_memoization(regex | DictionaryMatcher(["x"]))
        assert not supports_text_memoization(LambdaFunctionMatcher(lambda s: True))
        assert not supports_text_memoization(
            regex & LambdaFunctionMatcher(lambda s: True)
        )

    def test_overriding_both_methods_stays_memoized(self, datasheet_document):
        from repro.candidates.matchers import RegexMatcher, supports_text_memoization

        class SuffixRegexMatcher(RegexMatcher):
            def matches(self, span):
                return self.matches_text(span.text())

            def matches_text(self, text):
                return super().matches_text(text) and not text.endswith("0")

        both = SuffixRegexMatcher(r"\d+")
        assert supports_text_memoization(both)
        extractor = CandidateExtractor("r", {"n": both})
        mentions = extractor.extract_mentions(datasheet_document)["n"]
        assert mentions and all(not m.text.endswith("0") for m in mentions)
