"""Tests for the unified training runtime (repro.learning.trainer).

The contracts under test (docs/LEARNING.md):

* **Source equivalence** — slab-backed (streaming) training produces the
  bitwise-identical model to in-memory training for the logistic head, on
  both the electronics and genomics fixtures.
* **Crash/resume** — killing a checkpointed training run at any epoch
  boundary and re-invoking resumes at that boundary and converges to the
  bitwise-identical final state.
* **Determinism** — one seed in FonduerConfig makes repeated runs
  byte-identical end to end (marginals and model weights).
* **Bounded residency** — the slab batch source holds at most
  ``max_resident`` shards' slabs at a time.
* **Blockwise label model** — EM over CSR/blocked input never densifies the
  whole matrix (peak memory O(block)), and block structure does not change
  the estimates.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.learning.logistic import LogisticConfig, SparseLogisticRegression
from repro.learning.registry import available_models, create_model, model_spec
from repro.learning.trainer import (
    InMemoryBatchSource,
    SlabBatchSource,
    Trainer,
    TrainerCheckpoint,
    TrainerConfig,
)
from repro.pipeline.config import FonduerConfig
from repro.pipeline.fonduer import FonduerPipeline
from repro.storage.shards import ShardStore, concat_feature_slabs
from repro.supervision.label_model import LabelModel, LabelModelConfig


class SimulatedCrash(RuntimeError):
    """Raised from the epoch callback to model a process kill."""


def make_pipeline(dataset, **config_kwargs):
    config_kwargs.setdefault("shard_size", 3)
    config_kwargs.setdefault("max_resident_shards", 2)
    return FonduerPipeline(
        schema=dataset.schema,
        matchers=dataset.matchers,
        labeling_functions=dataset.labeling_functions,
        throttlers=dataset.throttlers,
        config=FonduerConfig(**config_kwargs),
    )


def slab_setup(dataset, tmp_path, **config_kwargs):
    """Run streaming once, then reopen the store with populated stage records."""
    pipeline = make_pipeline(dataset, **config_kwargs)
    streaming = pipeline.run_streaming(dataset.corpus.raw_documents, tmp_path / "work")
    store = ShardStore(
        tmp_path / "work",
        max_resident_shards=pipeline.config.max_resident_shards,
    )
    shards = store.open_corpus(
        dataset.corpus.raw_documents, pipeline.config.shard_size
    )
    return streaming, store, shards


class TestSourceEquivalence:
    """Slab-backed batches must be byte-identical to in-memory batches, so
    training from either source yields the identical model."""

    @pytest.mark.parametrize(
        "domain,n_docs", [("electronics", 9), ("genomics", 6)]
    )
    def test_streaming_and_in_memory_training_identical(
        self, tmp_path, domain, n_docs
    ):
        dataset = load_dataset(domain, n_docs=n_docs, seed=11)
        streaming, store, shards = slab_setup(dataset, tmp_path)

        features = concat_feature_slabs(
            store.load_feature_slab(shard) for shard in shards
        )
        marginals = np.concatenate(
            [store.load_marginal_slab(shard) for shard in shards]
        )
        trainer_config = TrainerConfig(n_epochs=7, batch_size=16, seed=3)

        memory_model = SparseLogisticRegression(LogisticConfig())
        Trainer(trainer_config).fit(
            memory_model, InMemoryBatchSource(features, marginals)
        )
        slab_model = SparseLogisticRegression(LogisticConfig())
        Trainer(trainer_config).fit(
            slab_model,
            SlabBatchSource(store, shards, with_targets=True, max_resident=1),
        )

        assert np.array_equal(memory_model.weights, slab_model.weights)
        assert memory_model.bias == slab_model.bias
        assert memory_model._feature_ids == slab_model._feature_ids
        assert np.array_equal(
            memory_model.predict_proba(features), slab_model.predict_proba(features)
        )

    def test_pipeline_level_model_equivalence(self, tmp_path):
        """The acceptance check: a streaming parse→train run's final model
        and predictions are bitwise those of the in-memory run() path."""
        dataset = load_dataset("electronics", n_docs=9, seed=11)
        in_memory = make_pipeline(dataset).run(
            make_pipeline(dataset).parse_documents(dataset.corpus.raw_documents),
            gold=dataset.gold_entries,
        )
        streaming = make_pipeline(dataset).run_streaming(
            dataset.corpus.raw_documents, tmp_path / "work", gold=dataset.gold_entries
        )
        assert np.array_equal(
            streaming.model.weights, in_memory.model.weights
        )
        assert streaming.model.bias == in_memory.model.bias
        assert np.array_equal(streaming.marginals, in_memory.marginals)
        assert streaming.extracted_entries == in_memory.extracted_entries

    def test_batches_byte_identical(self, tmp_path):
        dataset = load_dataset("electronics", n_docs=6, seed=2)
        streaming, store, shards = slab_setup(dataset, tmp_path)
        features = concat_feature_slabs(
            store.load_feature_slab(shard) for shard in shards
        )
        marginals = np.concatenate(
            [store.load_marginal_slab(shard) for shard in shards]
        )
        memory = InMemoryBatchSource(features, marginals)
        slab = SlabBatchSource(store, shards, with_targets=True, max_resident=1)
        assert len(memory) == len(slab) == features.n_rows
        rng = np.random.default_rng(0)
        for _ in range(5):
            positions = rng.choice(len(memory), size=min(16, len(memory)), replace=False)
            a = memory.batch(positions)
            b = slab.batch(positions)
            assert np.array_equal(a.positions, b.positions)
            assert np.array_equal(a.targets, b.targets)
            assert a.rows.column_names == b.rows.column_names
            assert np.array_equal(a.rows.indptr, b.rows.indptr)
            assert np.array_equal(a.rows.indices, b.rows.indices)
            assert np.array_equal(a.rows.data, b.rows.data)


class TestBoundedResidency:
    def test_slab_source_respects_lru_bound(self, tmp_path):
        dataset = load_dataset("electronics", n_docs=8, seed=3)
        streaming, store, shards = slab_setup(
            dataset, tmp_path, shard_size=2, max_resident_shards=1
        )
        assert len(shards) == 4
        source = SlabBatchSource(store, shards, with_targets=True, max_resident=1)
        # A shuffled pass over every row forces cross-shard access...
        order = np.random.default_rng(0).permutation(len(source))
        for lo in range(0, len(order), 8):
            source.batch(order[lo : lo + 8])
        # ...yet at most one shard's slabs were ever resident.
        assert source.n_resident == 1
        assert source.evictions > 0
        assert source.loads > len(shards)  # reloads happened instead of growth


class TestCrashResume:
    def test_kill_at_every_epoch_boundary_resumes_bitwise(self, tmp_path):
        dataset = load_dataset("electronics", n_docs=6, seed=4)
        streaming, store, shards = slab_setup(dataset, tmp_path)
        features = concat_feature_slabs(
            store.load_feature_slab(shard) for shard in shards
        )
        marginals = np.concatenate(
            [store.load_marginal_slab(shard) for shard in shards]
        )
        trainer_config = TrainerConfig(n_epochs=6, batch_size=8, seed=5)

        reference = SparseLogisticRegression()
        Trainer(trainer_config).fit(
            reference, InMemoryBatchSource(features, marginals)
        )

        for k in range(1, trainer_config.n_epochs):
            checkpoint = TrainerCheckpoint(tmp_path / f"ck-{k}" / "model.pkl", key="k1")

            def crash_after_epoch(epoch, resumed, k=k):
                if not resumed and epoch == k - 1:
                    raise SimulatedCrash(f"killed after epoch {k - 1}")

            crashed = SparseLogisticRegression()
            with pytest.raises(SimulatedCrash):
                Trainer(trainer_config).fit(
                    crashed,
                    InMemoryBatchSource(features, marginals),
                    checkpoint=checkpoint,
                    on_epoch=crash_after_epoch,
                )
            resumed_model = SparseLogisticRegression()
            stats = Trainer(trainer_config).fit(
                resumed_model,
                InMemoryBatchSource(features, marginals),
                checkpoint=checkpoint,
            )
            assert stats.n_epochs_resumed == k
            assert stats.n_epochs_run == trainer_config.n_epochs - k
            assert np.array_equal(resumed_model.weights, reference.weights)
            assert resumed_model.bias == reference.bias

    def test_sequence_model_resumes_without_init_state(
        self, tmp_path, electronics_candidates
    ):
        """Resuming a checkpointed sequence model restores state via
        load_state_dict without init_state ever running — the stats/timing
        accumulators must survive that path (regression: AttributeError on
        the first resumed end_epoch)."""
        from repro.learning.doc_rnn import DocumentRNN, DocumentRNNConfig
        from repro.learning.trainer import CandidateBatchSource

        candidates, _ = electronics_candidates
        subset = candidates[:8]
        targets = np.linspace(0.1, 0.9, len(subset))
        config = DocumentRNNConfig(
            embedding_dim=6, hidden_dim=4, attention_dim=4,
            n_epochs=2, max_document_length=40,
        )
        trainer_config = TrainerConfig(n_epochs=2, batch_size=4, seed=1)
        checkpoint = TrainerCheckpoint(tmp_path / "rnn.pkl", key="k")

        def crash_after_first(epoch, resumed):
            if not resumed and epoch == 0:
                raise SimulatedCrash("killed after epoch 0")

        with pytest.raises(SimulatedCrash):
            Trainer(trainer_config).fit(
                DocumentRNN(2, config),
                CandidateBatchSource(subset, None, targets),
                checkpoint=checkpoint,
                on_epoch=crash_after_first,
            )
        resumed = DocumentRNN(2, config)
        stats = Trainer(trainer_config).fit(
            resumed,
            CandidateBatchSource(subset, None, targets),
            checkpoint=checkpoint,
        )
        assert stats.n_epochs_resumed == 1
        assert resumed.stats.n_epochs == 2
        assert len(resumed.stats.losses) == 2

    def test_checkpoint_key_mismatch_retrains_from_scratch(self, tmp_path):
        dataset = load_dataset("electronics", n_docs=6, seed=4)
        streaming, store, shards = slab_setup(dataset, tmp_path)
        features = concat_feature_slabs(
            store.load_feature_slab(shard) for shard in shards
        )
        marginals = np.concatenate(
            [store.load_marginal_slab(shard) for shard in shards]
        )
        trainer_config = TrainerConfig(n_epochs=3, batch_size=8, seed=5)
        path = tmp_path / "ck" / "model.pkl"
        Trainer(trainer_config).fit(
            SparseLogisticRegression(),
            InMemoryBatchSource(features, marginals),
            checkpoint=TrainerCheckpoint(path, key="config-A"),
        )
        # A different key (e.g. an edited hyperparameter) must ignore the
        # stale checkpoint instead of resuming a mismatched model.
        stats = Trainer(trainer_config).fit(
            SparseLogisticRegression(),
            InMemoryBatchSource(features, marginals),
            checkpoint=TrainerCheckpoint(path, key="config-B"),
        )
        assert stats.n_epochs_resumed == 0
        assert stats.n_epochs_run == trainer_config.n_epochs


class TestDeterminism:
    def test_two_identical_runs_are_byte_identical(self):
        """The single FonduerConfig seed makes repeated run()s reproduce the
        marginals and the trained weights exactly."""
        dataset = load_dataset("electronics", n_docs=6, seed=9)
        results = []
        for _ in range(2):
            pipeline = make_pipeline(dataset, seed=13)
            documents = pipeline.parse_documents(dataset.corpus.raw_documents)
            results.append(pipeline.run(documents))
        first, second = results
        assert np.array_equal(first.marginals, second.marginals)
        assert np.array_equal(first.model.weights, second.model.weights)
        assert first.model.bias == second.model.bias
        assert first.extracted_entries == second.extracted_entries

    def test_config_seed_threads_into_model_configs(self):
        config = FonduerConfig(seed=42)
        assert config.lstm_config.seed == 42
        assert config.logistic_config.seed == 42
        assert config.doc_rnn_config.seed == 42


class TestRegistry:
    def test_available_models(self):
        assert {"logistic", "lstm", "bilstm_only", "doc_rnn"} <= set(
            available_models()
        )

    def test_only_logistic_is_streaming_capable(self):
        assert model_spec("logistic").streaming
        for name in ("lstm", "bilstm_only", "doc_rnn"):
            assert not model_spec(name).streaming

    def test_create_model_uses_config(self):
        config = FonduerConfig(
            model="logistic", logistic_config=LogisticConfig(n_epochs=5)
        )
        model = create_model("logistic", 2, config)
        assert isinstance(model, SparseLogisticRegression)
        assert model.config.n_epochs == 5
        from repro.learning.doc_rnn import DocumentRNN

        assert isinstance(create_model("doc_rnn", 2, config), DocumentRNN)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="Unknown model"):
            model_spec("nope")
        with pytest.raises(ValueError, match="Unknown model"):
            FonduerConfig(model="nope")


class TestBlockwiseLabelModel:
    def _matrix(self, n=300, m=6, seed=0):
        rng = np.random.default_rng(seed)
        return rng.choice([-1, 0, 1], size=(n, m), p=[0.3, 0.4, 0.3]).astype(int)

    def test_block_structure_does_not_change_estimates(self):
        """Chunking into many blocks accumulates the same EM statistics as a
        single block (up to float summation order, well below tolerance)."""
        L = self._matrix()
        one_block = LabelModel(LabelModelConfig(block_size=8192)).fit(L)
        many_blocks = LabelModel(LabelModelConfig(block_size=32)).fit(L)
        assert np.allclose(
            one_block.estimated_accuracies,
            many_blocks.estimated_accuracies,
            rtol=0.0,
            atol=1e-9,
        )
        assert np.allclose(
            one_block.predict_proba(L), many_blocks.predict_proba(L),
            rtol=0.0, atol=1e-9,
        )

    def test_csr_fit_never_densifies_whole_matrix(self):
        """The densify-regression: fitting a label matrix far taller than the
        block size must peak at O(block), not O(matrix).  At this size the
        old whole-matrix densify + masks would dominate RSS."""
        from repro.storage.sparse import CSRBuilder

        n_rows, n_lfs = 120_000, 12
        rng = np.random.default_rng(1)
        builder = CSRBuilder(column_ids={f"lf{j}": j for j in range(n_lfs)})
        for i in range(n_rows):
            votes = rng.choice([-1, 1], size=2)
            columns = rng.choice(n_lfs, size=2, replace=False)
            builder.add_row(i, ((f"lf{int(c)}", float(v)) for c, v in zip(columns, votes)))
        csr = builder.build()

        # The full dense float64 matrix alone would be ~11.5 MiB, and the old
        # EM materialized several mask/vote arrays of that size on top.
        dense_bytes = n_rows * n_lfs * 8
        config = LabelModelConfig(block_size=2048, n_iterations=3)
        model = LabelModel(config)
        tracemalloc.start()
        model.fit(csr)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert model.accuracies_ is not None
        assert peak < dense_bytes / 2, (
            f"blockwise EM peaked at {peak} bytes; whole-matrix densify "
            f"would be {dense_bytes}"
        )

    def test_csr_and_dense_agree(self):
        from repro.storage.sparse import CSRMatrix

        L = self._matrix(n=80, m=4, seed=3)
        rows = [
            {f"lf{j}": float(L[i, j]) for j in range(L.shape[1]) if L[i, j] != 0}
            for i in range(L.shape[0])
        ]
        csr = CSRMatrix.from_rows(
            [{f"lf{j}": 0.0 for j in range(L.shape[1])}] + rows
        ).select_positions(range(1, L.shape[0] + 1))
        dense = LabelModel(LabelModelConfig(block_size=16)).fit(L)
        sparse = LabelModel(LabelModelConfig(block_size=16)).fit(csr)
        assert np.array_equal(
            dense.estimated_accuracies, sparse.estimated_accuracies
        )


class TestTrainerValidation:
    def test_empty_source_rejected(self):
        from repro.storage.sparse import CSRMatrix

        empty = CSRMatrix.from_rows([])
        with pytest.raises(ValueError, match="empty"):
            Trainer(TrainerConfig()).fit(
                SparseLogisticRegression(), InMemoryBatchSource(empty, [])
            )

    def test_bad_schedule_rejected(self):
        with pytest.raises(ValueError):
            TrainerConfig(n_epochs=0)
        with pytest.raises(ValueError):
            TrainerConfig(batch_size=0)
