"""Property tests: the pre/post interval encoding vs a pointer-chasing oracle.

Random context trees (seeded stdlib ``random`` — no extra test deps) are
encoded into a :class:`~repro.data_model.nodes.NodeTable`; every structural
answer — ancestorship, LCA, subtree intervals, depths, span intervals — must
equal the answer computed by naive parent-pointer walks over the same tree.
The oracle is deliberately the dumbest possible implementation so a bug in
the interval encoding cannot hide in a shared shortcut.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.data_model.context import (
    Caption,
    Cell,
    Document,
    Paragraph,
    Section,
    Sentence,
    Span,
    Table,
)
from repro.data_model.nodes import (
    NODE_COLUMNS,
    NodeTable,
    node_table,
    span_interval,
)

WORDS = ["alpha", "beta", "gamma", "delta", "mps9916", "200", "ma"]


def _random_attributes(rng):
    """Sometimes-present HTML metadata, exercising the tag/class/id columns."""
    if rng.random() < 0.4:
        return None
    attributes = {"html_tag": rng.choice(["div", "p", "td", "span"])}
    html_attrs = {}
    if rng.random() < 0.5:
        html_attrs["class"] = rng.choice(["hero", "body", "fine-print"])
    if rng.random() < 0.3:
        html_attrs["id"] = f"e{rng.randint(0, 9)}"
    if html_attrs:
        attributes["html_attrs"] = html_attrs
    return attributes


def _add_sentence(rng, parent):
    paragraph = Paragraph(parent, position=len(parent.children))
    return Sentence(
        paragraph,
        words=[rng.choice(WORDS) for _ in range(rng.randint(1, 4))],
        position=0,
    )


def _grow(rng, parent, document, depth):
    """Attach 1-3 random children, mirroring the shapes the parsers emit:
    sections nest sections/tables/paragraphs, tables hold cells and captions,
    cells may hold paragraphs or a nested table."""
    for _ in range(rng.randint(1, 3)):
        roll = rng.random()
        if depth >= 5 or roll < 0.45:
            _add_sentence(rng, parent)
        elif roll < 0.7:
            section = Section(document, attributes=_random_attributes(rng))
            # Section() parents itself to the document; re-home it so the
            # random tree actually nests.
            if parent is not document:
                document.children.remove(section)
                parent.add_child(section)
            _grow(rng, section, document, depth + 1)
        else:
            table = Table(parent, name=f"t{rng.randint(0, 99)}",
                          attributes=_random_attributes(rng))
            if rng.random() < 0.4:
                _add_sentence(rng, Caption(table))
            for row in range(rng.randint(1, 2)):
                for col in range(rng.randint(1, 3)):
                    cell = Cell(table, row_start=row, col_start=col)
                    if depth < 4 and rng.random() < 0.2:
                        _grow(rng, cell, document, depth + 2)
                    else:
                        _add_sentence(rng, cell)


def random_document(seed):
    rng = random.Random(seed)
    document = Document(f"prop_{seed}")
    _grow(rng, Section(document), document, 1)
    return document


# --------------------------------------------------------- pointer oracles
def oracle_ancestor_or_self(a_ctx, b_ctx):
    node = b_ctx
    while node is not None:
        if node is a_ctx:
            return True
        node = node.parent
    return False


def oracle_lca(a_ctx, b_ctx):
    chain_b = {id(ctx) for ctx in [b_ctx] + b_ctx.ancestors()}
    for ctx in [a_ctx] + a_ctx.ancestors():
        if id(ctx) in chain_b:
            return ctx
    return None


def _sample_pairs(rng, n_nodes, n_pairs=120):
    return [
        (rng.randrange(n_nodes), rng.randrange(n_nodes)) for _ in range(n_pairs)
    ]


SEEDS = [0, 1, 2, 7, 13, 42, 1234, 99991]


class TestIntervalEncodingProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_preorder_matches_descendants(self, seed):
        document = random_document(seed)
        table = node_table(document)
        assert table.contexts == [document] + list(document.descendants())

    @pytest.mark.parametrize("seed", SEEDS)
    def test_ancestor_predicate_matches_pointer_walk(self, seed):
        document = random_document(seed)
        table = node_table(document)
        rng = random.Random(seed + 1)
        for a, b in _sample_pairs(rng, len(table)):
            expected = oracle_ancestor_or_self(table.contexts[a], table.contexts[b])
            assert table.is_ancestor(a, b) == expected
            # The equivalent pre/post-plane formulation must agree too.
            plane = table.post[a] >= table.post[b] and a <= b
            assert bool(plane) == expected

    @pytest.mark.parametrize("seed", SEEDS)
    def test_lca_matches_pointer_walk(self, seed):
        document = random_document(seed)
        table = node_table(document)
        rng = random.Random(seed + 2)
        for a, b in _sample_pairs(rng, len(table)):
            expected = oracle_lca(table.contexts[a], table.contexts[b])
            assert table.context_at(table.lca(a, b)) is expected

    @pytest.mark.parametrize("seed", SEEDS)
    def test_subtree_interval_is_exactly_the_descendant_range(self, seed):
        document = random_document(seed)
        table = node_table(document)
        for pre, ctx in enumerate(table.contexts):
            lo, hi = table.interval(pre)
            inside = {table.pre_of(d) for d in ctx.descendants()} | {pre}
            assert inside == set(range(lo, hi + 1))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_depth_and_parent_columns(self, seed):
        document = random_document(seed)
        table = node_table(document)
        for pre, ctx in enumerate(table.contexts):
            assert table.depth[pre] == len(ctx.ancestors())
            if ctx.parent is None:
                assert table.parent_pre[pre] == -1
            else:
                assert table.contexts[table.parent_pre[pre]] is ctx.parent

    @pytest.mark.parametrize("seed", SEEDS)
    def test_ancestor_paths_match_pointer_walk(self, seed):
        document = random_document(seed)
        table = node_table(document)
        rng = random.Random(seed + 3)
        for pre in {rng.randrange(len(table)) for _ in range(40)}:
            tags, classes, element_ids = table.ancestor_paths(pre)
            chain = list(reversed(table.contexts[pre].ancestors()))  # root-first
            expected_tags = tuple(
                str(ctx.attributes.get("html_tag", ""))
                for ctx in chain
                if ctx.attributes.get("html_tag")
            )
            assert tags == expected_tags
            expected_classes = tuple(
                str(ctx.attributes["html_attrs"]["class"])
                for ctx in chain
                if isinstance(ctx.attributes.get("html_attrs"), dict)
                and ctx.attributes["html_attrs"].get("class")
            )
            assert classes == expected_classes


class TestSpanIntervals:
    def _spans(self, document, rng, n=8):
        sentences = list(document.sentences())
        picks = [rng.choice(sentences) for _ in range(n)]
        return [Span(sentence, 0, len(sentence.words)) for sentence in picks]

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_span_interval_bounds_are_sentence_pre_ranks(self, seed):
        document = random_document(seed)
        table = node_table(document)
        rng = random.Random(seed + 4)
        spans = self._spans(document, rng)
        lo, hi = span_interval(spans)
        pres = [table.pre_of(span.sentence) for span in spans]
        assert (lo, hi) == (min(pres), max(pres))

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_containment_matches_ancestor_oracle(self, seed):
        """A tuple lies inside container c iff c is an ancestor of every
        mention sentence — the exact predicate the KB's within filter uses."""
        document = random_document(seed)
        table = node_table(document)
        rng = random.Random(seed + 5)
        spans = self._spans(document, rng, n=2)
        lo, hi = span_interval(spans)
        for pre, ctx in enumerate(table.contexts):
            c_lo, c_hi = table.interval(pre)
            by_interval = c_lo <= lo and hi <= c_hi
            by_oracle = all(
                oracle_ancestor_or_self(ctx, span.sentence) for span in spans
            )
            assert by_interval == by_oracle

    def test_empty_and_detached_spans_yield_sentinel(self):
        assert span_interval([]) == (-1, -1)
        orphan = Sentence(Paragraph(Document("tmp")), words=["x"], position=0)
        orphan.parent.children.remove(orphan)
        orphan.parent = None
        assert span_interval([Span(orphan, 0, 1)]) == (-1, -1)


class TestPersistenceAndCaching:
    def test_arrays_round_trip(self):
        document = random_document(7)
        table = node_table(document)
        decoded = NodeTable.from_arrays(table.to_arrays())
        for name in NODE_COLUMNS:
            np.testing.assert_array_equal(decoded[name], getattr(table, name))
        assert decoded["tag_vocab"] == table.tags
        assert decoded["kind_vocab"] == table.kind_names

    def test_table_is_cached_until_the_tree_mutates(self):
        document = random_document(11)
        table = node_table(document)
        assert node_table(document) is table
        _add_sentence(random.Random(0), Section(document))
        rebuilt = node_table(document)
        assert rebuilt is not table
        assert len(rebuilt) > len(table)


class TestPathMemoization:
    def test_ancestor_paths_are_computed_once_per_node(self):
        document = random_document(21)
        table = node_table(document)
        deepest = max(range(len(table)), key=lambda pre: table.depth[pre])
        first = table.ancestor_paths(deepest)
        assert table.ancestor_paths(deepest) is first  # memo hit, not a rebuild
        parent = table.parent_pre[deepest]
        grand = table.parent_pre[parent]
        if grand >= 0:
            # Shared prefixes are the *same* cached entries, extended — the
            # grandparent's path was materialized by the deeper node's walk.
            assert grand in table._paths
