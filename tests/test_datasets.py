"""Tests for the four synthetic evaluation corpora and the existing-KB builder."""

import pytest

from repro.candidates.extractor import CandidateExtractor
from repro.datasets import load_dataset
from repro.datasets.existing_kbs import build_existing_kb


def matchers_of(dataset):
    return {t: dataset.matchers[t] for t in dataset.schema.entity_types}


class TestLoadDataset:
    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("astronomy")

    @pytest.mark.parametrize("name", ["electronics", "advertisements", "paleontology", "genomics"])
    def test_all_domains_load(self, name):
        dataset = load_dataset(name, n_docs=3, seed=0)
        assert dataset.corpus.n_documents == 3
        assert dataset.gold_entries
        assert dataset.labeling_functions
        assert set(dataset.matchers) == set(dataset.schema.entity_types)

    @pytest.mark.parametrize("name", ["electronics", "advertisements", "paleontology", "genomics"])
    def test_generation_is_deterministic(self, name):
        first = load_dataset(name, n_docs=3, seed=5)
        second = load_dataset(name, n_docs=3, seed=5)
        assert first.gold_entries == second.gold_entries
        assert [d.content for d in first.corpus.raw_documents] == [
            d.content for d in second.corpus.raw_documents
        ]

    @pytest.mark.parametrize("name", ["electronics", "advertisements", "paleontology", "genomics"])
    def test_different_seeds_differ(self, name):
        assert (
            load_dataset(name, n_docs=3, seed=1).gold_entries
            != load_dataset(name, n_docs=3, seed=2).gold_entries
        )

    def test_summary_has_table1_fields(self):
        summary = load_dataset("electronics", n_docs=2).summary()
        assert {"dataset", "size_chars", "n_docs", "n_gold_entries", "format"} <= set(summary)


class TestDatasetSpecHelpers:
    def test_parse_documents_cached(self, electronics_dataset):
        first = electronics_dataset.parse_documents()
        second = electronics_dataset.parse_documents()
        assert first is second

    def test_lf_modality_partition(self, electronics_dataset):
        dataset = electronics_dataset
        textual = dataset.textual_labeling_functions
        metadata = dataset.metadata_labeling_functions
        assert textual and metadata
        assert not {lf.name for lf in textual} & {lf.name for lf in metadata}
        assert all(lf.modality == "textual" for lf in textual)
        assert all(lf.modality in ("structural", "tabular", "visual") for lf in metadata)

    def test_gold_by_document_partition(self, electronics_dataset):
        by_document = electronics_dataset.corpus.gold_by_document()
        total = sum(len(v) for v in by_document.values())
        assert total == len(electronics_dataset.gold_entries)


class TestElectronicsCorpus:
    def test_parts_in_header_and_currents_in_table(self, electronics_dataset, electronics_documents):
        dataset = electronics_dataset
        extractor = CandidateExtractor(dataset.schema.name, matchers_of(dataset))
        mentions = extractor.extract_mentions(electronics_documents[0])
        parts = mentions["transistor_part"]
        currents = mentions["current"]
        assert parts and currents
        assert all(not m.span.is_tabular or m.span.row_index == 0 for m in parts[:1])
        assert any(m.span.is_tabular for m in currents)

    def test_gold_reachable_at_document_scope(self, electronics_dataset, electronics_documents):
        dataset = electronics_dataset
        extractor = CandidateExtractor(dataset.schema.name, matchers_of(dataset))
        candidates = extractor.extract(electronics_documents).candidates
        extracted = {(c.document.name, c.entity_tuple) for c in candidates}
        reachable = dataset.gold_entries & extracted
        assert len(reachable) / len(dataset.gold_entries) > 0.9

    def test_throttler_keeps_all_gold(self, electronics_dataset, electronics_documents):
        dataset = electronics_dataset
        unthrottled = CandidateExtractor(dataset.schema.name, matchers_of(dataset))
        throttled = CandidateExtractor(
            dataset.schema.name, matchers_of(dataset), throttlers=dataset.throttlers
        )
        full = unthrottled.extract(electronics_documents)
        pruned = throttled.extract(electronics_documents)
        assert pruned.n_candidates <= full.n_candidates
        gold_reached = {
            (c.document.name, c.entity_tuple) for c in pruned.candidates
        } & dataset.gold_entries
        gold_reached_full = {
            (c.document.name, c.entity_tuple) for c in full.candidates
        } & dataset.gold_entries
        assert gold_reached == gold_reached_full

    def test_documents_are_pdf_format(self, electronics_dataset):
        assert all(r.format == "pdf" for r in electronics_dataset.corpus.raw_documents)

    def test_labeling_functions_have_mixed_polarity(self, electronics_candidates, electronics_dataset):
        candidates, _ = electronics_candidates
        from repro.supervision.labeling import LFApplier

        L = LFApplier(electronics_dataset.labeling_functions).apply_dense(candidates)
        assert (L == 1).any() and (L == -1).any()


class TestAdvertisementsCorpus:
    def test_html_format_and_city_gold(self):
        dataset = load_dataset("advertisements", n_docs=5, seed=2)
        assert all(r.format == "html" for r in dataset.corpus.raw_documents)
        for _, (city, price) in dataset.gold_entries:
            assert city.isalpha() or " " in city
            assert price.isdigit()

    def test_one_gold_entry_per_document(self):
        dataset = load_dataset("advertisements", n_docs=6, seed=2)
        assert len(dataset.gold_entries) == 6


class TestPaleontologyCorpus:
    def test_multiple_gold_entries_per_document(self):
        dataset = load_dataset("paleontology", n_docs=4, seed=2)
        by_document = dataset.corpus.gold_by_document()
        assert all(len(entries) >= 3 for entries in by_document.values())

    def test_formation_never_in_same_sentence_as_measurement(self):
        dataset = load_dataset("paleontology", n_docs=4, seed=2)
        documents = dataset.parse_documents()
        extractor = CandidateExtractor(dataset.schema.name, matchers_of(dataset))
        for document in documents:
            mentions = extractor.extract_mentions(document)
            measurement_sentences = {id(m.span.sentence) for m in mentions["measurement"]}
            formation_sentences = {id(m.span.sentence) for m in mentions["formation"]}
            assert not measurement_sentences & formation_sentences


class TestGenomicsCorpus:
    def test_xml_format_without_visual(self, genomics_dataset, genomics_documents):
        assert all(r.format == "xml" for r in genomics_dataset.corpus.raw_documents)
        for document in genomics_documents:
            assert all(
                box is None for s in document.sentences() for box in s.word_boxes
            )

    def test_gold_only_contains_significant_snps(self, genomics_dataset):
        # Every gold rsid must appear in its document next to a significant p-value.
        for document_name, (rsid, _) in genomics_dataset.gold_entries:
            raw = next(r for r in genomics_dataset.corpus.raw_documents if r.name == document_name)
            assert rsid in raw.content

    def test_phenotype_in_title(self, genomics_dataset):
        for raw in genomics_dataset.corpus.raw_documents:
            phenotype = raw.metadata["phenotype"]
            assert f"study of {phenotype}" in raw.content.lower()


class TestExistingKB:
    def test_coverage_controls_size(self):
        truth = {(f"p{i}", str(i)) for i in range(50)}
        kb = build_existing_kb(truth, coverage_of_truth=0.5, foreign_fraction=0.0)
        assert len(kb & truth) == 25

    def test_foreign_entries_added(self):
        truth = {(f"p{i}", str(i)) for i in range(20)}
        kb = build_existing_kb(truth, coverage_of_truth=0.5, foreign_fraction=0.2)
        assert len(kb - truth) == 2

    def test_deterministic(self):
        truth = {(f"p{i}", str(i)) for i in range(30)}
        assert build_existing_kb(truth, seed=3) == build_existing_kb(truth, seed=3)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            build_existing_kb(set(), coverage_of_truth=0.0)
        with pytest.raises(ValueError):
            build_existing_kb(set(), foreign_fraction=-1.0)

    def test_empty_truth(self):
        assert build_existing_kb(set(), coverage_of_truth=0.5, foreign_fraction=0.0) == set()
