"""Streaming-mode tests: equivalence with the in-memory path, crash/resume.

The contract under test (docs/SCALING.md): a streaming run over a corpus
directory produces *byte-identical* candidates, feature matrices, label
matrices, marginals and KB tuples to the in-memory pipeline on the same
corpus and configuration — and killing the process at any shard × stage
boundary, then re-invoking, converges to the same result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.datasets.base import read_corpus_dir, write_corpus_dir
from repro.pipeline.config import FonduerConfig
from repro.pipeline.fonduer import STREAMING_STAGES, FonduerPipeline
from repro.storage.shards import ShardStore
from repro.storage.sparse import CSRMatrix


class SimulatedCrash(RuntimeError):
    """Raised from the progress callback to model a process kill."""


def make_pipeline(dataset, **config_kwargs):
    config_kwargs.setdefault("shard_size", 3)
    config_kwargs.setdefault("max_resident_shards", 2)
    return FonduerPipeline(
        schema=dataset.schema,
        matchers=dataset.matchers,
        labeling_functions=dataset.labeling_functions,
        throttlers=dataset.throttlers,
        config=FonduerConfig(**config_kwargs),
    )


def reference_outputs(dataset, **config_kwargs):
    """The in-memory path's full output set for equivalence comparison."""
    pipeline = make_pipeline(dataset, **config_kwargs)
    documents = pipeline.parse_documents(dataset.corpus.raw_documents)
    extraction = pipeline.generate_candidates(documents)
    feature_rows = pipeline.featurize()
    label_matrix = pipeline.apply_labeling_functions()
    result = pipeline.run(
        documents, gold=dataset.gold_entries, reuse_candidates=True
    )
    return {
        "extraction": extraction,
        "features": CSRMatrix.from_rows(feature_rows),
        "label_matrix": label_matrix,
        "result": result,
    }


def assert_streaming_equivalent(dataset, streaming, reference, workdir):
    result = reference["result"]
    extraction = reference["extraction"]

    # Candidates: same count, same entity tuples, same span stable ids, same
    # positional ids — checked against the shard slabs.
    assert streaming.n_candidates == result.n_candidates
    store = ShardStore(workdir)
    shards = store.open_corpus(dataset.corpus.raw_documents, streaming_shard_size(streaming))
    stored = [
        candidate
        for shard in shards
        for extraction_result in store.load_candidates(shard)
        for candidate in extraction_result.candidates
    ]
    assert [c.entity_tuple for c in stored] == [
        c.entity_tuple for c in extraction.candidates
    ]

    def span_key(span):
        # Context ids are process-local (stable within a parse, not across
        # parses), so cross-run identity is positional: document path +
        # sentence position + word range.
        document = span.document
        return (
            document.path if document is not None else "",
            span.sentence.position,
            span.word_start,
            span.word_end,
        )

    assert [tuple(span_key(s) for s in c.spans) for c in stored] == [
        tuple(span_key(s) for s in c.spans) for c in extraction.candidates
    ]
    assert [c.id for c in stored] == [c.id for c in extraction.candidates]
    assert streaming.mentions_by_type == extraction.mentions_by_type
    assert streaming.n_raw_candidates == extraction.n_raw_candidates
    assert streaming.n_throttled == extraction.n_throttled

    # Feature matrix: byte-identical CSR.
    assert np.array_equal(streaming.features.indptr, reference["features"].indptr)
    assert np.array_equal(streaming.features.indices, reference["features"].indices)
    assert np.array_equal(streaming.features.data, reference["features"].data)
    assert streaming.features.column_names == reference["features"].column_names

    # Label matrix, marginals, KB, metrics.
    assert np.array_equal(streaming.label_matrix, reference["label_matrix"])
    assert np.array_equal(streaming.marginals, result.marginals)
    assert streaming.extracted_entries == result.extracted_entries
    assert sorted(streaming.kb.entries(dataset.schema.name)) == sorted(
        result.kb.entries(dataset.schema.name)
    )
    assert streaming.metrics == result.metrics
    assert streaming.n_train == result.n_train
    assert streaming.n_test == result.n_test


def streaming_shard_size(streaming):
    # Recover shard_size from the run's shape (n_documents over n_shards).
    return -(-streaming.n_documents // streaming.n_shards)


class TestEquivalence:
    def test_electronics_byte_identical(self, tmp_path):
        dataset = load_dataset("electronics", n_docs=9, seed=11)
        reference = reference_outputs(dataset)
        workdir = tmp_path / "work"
        streaming = make_pipeline(dataset).run_streaming(
            dataset.corpus.raw_documents, workdir, gold=dataset.gold_entries
        )
        assert streaming.n_shards == 3
        assert_streaming_equivalent(dataset, streaming, reference, workdir)

    def test_genomics_byte_identical(self, tmp_path):
        dataset = load_dataset("genomics", n_docs=6, seed=11)
        reference = reference_outputs(dataset)
        workdir = tmp_path / "work"
        streaming = make_pipeline(dataset).run_streaming(
            dataset.corpus.raw_documents, workdir, gold=dataset.gold_entries
        )
        assert_streaming_equivalent(dataset, streaming, reference, workdir)

    def test_corpus_directory_input_with_gold_json(self, tmp_path):
        dataset = load_dataset("electronics", n_docs=6, seed=2)
        corpus_dir = tmp_path / "corpus"
        write_corpus_dir(dataset.corpus, corpus_dir)
        loaded = read_corpus_dir(corpus_dir)
        assert [r.name for r in loaded.raw_documents] == [
            r.name for r in dataset.corpus.raw_documents
        ]
        assert loaded.gold_entries == dataset.corpus.gold_entries

        reference = reference_outputs(dataset)
        streaming = make_pipeline(dataset).run_streaming(
            corpus_dir, tmp_path / "work"
        )
        # gold.json supplies the gold set automatically
        assert streaming.metrics == reference["result"].metrics
        assert np.array_equal(streaming.marginals, reference["result"].marginals)

    def test_legacy_path_byte_identical(self, tmp_path):
        """use_index=False selects the legacy implementations end to end —
        including the legacy (vectorized=False) label-model EM, which must
        consume the streaming slab source by densifying it (the reference
        path is fully resident by contract)."""
        dataset = load_dataset("electronics", n_docs=6, seed=11)
        reference = reference_outputs(dataset, use_index=False)
        streaming = make_pipeline(dataset, use_index=False).run_streaming(
            dataset.corpus.raw_documents, tmp_path / "work",
            gold=dataset.gold_entries,
        )
        assert np.array_equal(streaming.marginals, reference["result"].marginals)
        assert streaming.extracted_entries == reference["result"].extracted_entries

    def test_streaming_requires_logistic_model(self, tmp_path):
        dataset = load_dataset("electronics", n_docs=3, seed=0)
        pipeline = make_pipeline(dataset, model="lstm")
        with pytest.raises(NotImplementedError):
            pipeline.run_streaming(dataset.corpus.raw_documents, tmp_path / "w")


class TestCorpusDir:
    def test_glob_fallback_matches_longest_extension_first(self, tmp_path):
        """'.pdf.html' must classify as pdf, not as its '.html' suffix."""
        from repro.parsing.corpus import RawDocument

        corpus_dir = tmp_path / "corpus"
        (corpus_dir / "docs").mkdir(parents=True)
        (corpus_dir / "docs" / "sheet.pdf.html").write_text("<p>pdf doc</p>")
        (corpus_dir / "docs" / "page.html").write_text("<p>html doc</p>")
        (corpus_dir / "docs" / "paper.xml").write_text("<article/>")
        loaded = read_corpus_dir(corpus_dir)
        by_name = {raw.name: raw for raw in loaded.raw_documents}
        assert by_name["sheet"].format == "pdf"
        assert by_name["page"].format == "html"
        assert by_name["paper"].format == "xml"
        assert isinstance(loaded.raw_documents[0], RawDocument)

    def test_same_name_documents_get_distinct_files(self, tmp_path):
        from repro.datasets.base import GeneratedCorpus
        from repro.parsing.corpus import RawDocument

        corpus = GeneratedCorpus(
            raw_documents=[
                RawDocument(name="datasheet", content="<p>AAA</p>", format="html"),
                RawDocument(name="datasheet", content="<p>BBB</p>", format="html"),
            ],
            gold_entries=set(),
        )
        corpus_dir = tmp_path / "corpus"
        write_corpus_dir(corpus, corpus_dir)
        loaded = read_corpus_dir(corpus_dir)
        assert [raw.content for raw in loaded.raw_documents] == [
            "<p>AAA</p>",
            "<p>BBB</p>",
        ]
        paths = [raw.path for raw in loaded.raw_documents]
        assert len(set(paths)) == 2

    def test_duplicate_explicit_paths_are_rejected(self, tmp_path):
        from repro.datasets.base import GeneratedCorpus
        from repro.parsing.corpus import RawDocument

        corpus = GeneratedCorpus(
            raw_documents=[
                RawDocument(name="a", content="x", format="html", path="docs/same.html"),
                RawDocument(name="b", content="y", format="html", path="docs/same.html"),
            ],
            gold_entries=set(),
        )
        with pytest.raises(ValueError, match="Duplicate corpus-relative path"):
            write_corpus_dir(corpus, tmp_path / "corpus")

    def test_lazy_open_holds_no_raw_content(self, tmp_path):
        """The corpus-dir path content-addresses lazily: the handles the
        store keeps carry no document text, and the loader re-reads exactly
        one shard's files on demand."""
        from repro.datasets.base import (
            corpus_dir_records,
            iter_corpus_dir,
            load_record_document,
        )
        from repro.engine.fingerprint import raw_document_fingerprint
        from repro.parsing.corpus import RawDocument

        dataset = load_dataset("electronics", n_docs=4, seed=2)
        corpus_dir = tmp_path / "corpus"
        write_corpus_dir(dataset.corpus, corpus_dir)

        records = {str(r["path"]): r for r in corpus_dir_records(corpus_dir)}
        refs, fingerprints = [], []
        for raw in iter_corpus_dir(corpus_dir):
            fingerprints.append(raw_document_fingerprint(raw))
            refs.append(
                RawDocument(raw.name, "", raw.format, dict(raw.metadata), raw.path)
            )

        def loader(shard):
            return [
                load_record_document(corpus_dir, records[p]) for p in shard.doc_paths
            ]

        store = ShardStore(tmp_path / "work")
        shards = store.open_corpus(refs, 2, fingerprints=fingerprints, raw_loader=loader)
        # Handles hold no text; the loader materializes one shard's worth.
        assert all(not raw.content for shard in shards for raw in shard.raws)
        loaded = store.shard_raws(shards[0])
        assert all(raw.content for raw in loaded)
        # Lazy ids equal an eager open over the same documents — a workdir
        # written by one path resumes under the other.
        eager_dir = ShardStore(tmp_path / "work-eager-dir").open_corpus(
            list(iter_corpus_dir(corpus_dir)), 2
        )
        assert [s.shard_id for s in shards] == [s.shard_id for s in eager_dir]


class TestCheckpointResume:
    def test_second_run_resumes_everything(self, tmp_path):
        dataset = load_dataset("electronics", n_docs=6, seed=4)
        workdir = tmp_path / "work"
        first = make_pipeline(dataset).run_streaming(
            dataset.corpus.raw_documents, workdir
        )
        assert first.n_resumed == 0
        # Per-shard stages (the four slab stages + the KB segment stage)
        # plus the corpus-global marginals boundary.
        assert first.n_computed == first.n_shards * (len(STREAMING_STAGES) + 1) + 1
        assert first.train_stats.n_epochs_resumed == 0
        assert first.train_stats.n_epochs_run > 0
        second = make_pipeline(dataset).run_streaming(
            dataset.corpus.raw_documents, workdir
        )
        assert second.n_computed == 0
        assert second.n_resumed == second.n_shards * (len(STREAMING_STAGES) + 1) + 1
        # Training resumes from its completed per-epoch checkpoint too.
        assert second.train_stats.n_epochs_run == 0
        assert second.train_stats.n_epochs_resumed == first.train_stats.n_epochs_run
        assert np.array_equal(second.marginals, first.marginals)

    def test_kill_at_every_boundary_then_resume_is_byte_identical(self, tmp_path):
        """The crash/resume property: for every shard × stage boundary k,
        killing right after boundary k and re-invoking yields the same KB,
        marginals and matrices as an uninterrupted run."""
        dataset = load_dataset("electronics", n_docs=6, seed=5)
        config = dict(shard_size=2, max_resident_shards=1)
        reference = make_pipeline(dataset, **config).run_streaming(
            dataset.corpus.raw_documents, tmp_path / "reference"
        )
        n_boundaries = reference.n_computed
        assert n_boundaries == 3 * (len(STREAMING_STAGES) + 1) + 1

        for k in range(1, n_boundaries + 1):
            workdir = tmp_path / f"work-{k}"
            completed = []

            def crash_after_k(event, k=k, completed=completed):
                completed.append(event["stage"])
                if len(completed) >= k:
                    raise SimulatedCrash(f"killed at boundary {k}")

            with pytest.raises(SimulatedCrash):
                make_pipeline(dataset, **config).run_streaming(
                    dataset.corpus.raw_documents, workdir, progress=crash_after_k
                )
            resumed = make_pipeline(dataset, **config).run_streaming(
                dataset.corpus.raw_documents, workdir
            )
            # Everything completed before the kill is resumed, not recomputed
            # (training epochs are accounted separately in train_stats, so
            # the expectation counts the non-epoch boundaries that fired).
            assert resumed.n_resumed == sum(1 for s in completed if s != "train")
            assert np.array_equal(resumed.marginals, reference.marginals)
            assert np.array_equal(resumed.label_matrix, reference.label_matrix)
            assert np.array_equal(
                resumed.features.data, reference.features.data
            )
            assert resumed.extracted_entries == reference.extracted_entries
            assert sorted(resumed.kb.entries(dataset.schema.name)) == sorted(
                reference.kb.entries(dataset.schema.name)
            )

    def test_kill_at_every_epoch_boundary_then_resume_is_byte_identical(
        self, tmp_path
    ):
        """Mid-training crash/resume: killing right after any epoch's
        checkpoint and re-invoking must resume at that epoch boundary and
        converge to the bitwise-identical final model and KB."""
        from repro.learning.logistic import LogisticConfig

        dataset = load_dataset("electronics", n_docs=6, seed=5)
        config = dict(
            shard_size=2,
            max_resident_shards=1,
            logistic_config=LogisticConfig(n_epochs=5),
        )
        reference = make_pipeline(dataset, **config).run_streaming(
            dataset.corpus.raw_documents, tmp_path / "reference"
        )
        n_epochs = reference.train_stats.n_epochs_run
        assert n_epochs == 5

        for k in range(1, n_epochs):
            workdir = tmp_path / f"work-{k}"

            def crash_after_epoch_k(event, k=k):
                if event["stage"] == "train" and event["epoch"] == k - 1:
                    raise SimulatedCrash(f"killed after epoch {k - 1}")

            with pytest.raises(SimulatedCrash):
                make_pipeline(dataset, **config).run_streaming(
                    dataset.corpus.raw_documents, workdir,
                    progress=crash_after_epoch_k,
                )
            resumed = make_pipeline(dataset, **config).run_streaming(
                dataset.corpus.raw_documents, workdir
            )
            # Epochs 0..k-1 resume from the checkpoint, the rest run live —
            # and the final model state is bitwise what the uninterrupted
            # run produced.
            assert resumed.train_stats.n_epochs_resumed == k
            assert resumed.train_stats.n_epochs_run == n_epochs - k
            assert np.array_equal(
                resumed.model.weights, reference.model.weights
            )
            assert resumed.model.bias == reference.model.bias
            assert np.array_equal(resumed.marginals, reference.marginals)
            assert resumed.extracted_entries == reference.extracted_entries

    def test_hyperparameter_edit_retrains_only(self, tmp_path):
        """Editing one model hyperparameter re-runs the training tail alone:
        every per-shard stage and the marginals stage resume."""
        from repro.learning.logistic import LogisticConfig

        dataset = load_dataset("electronics", n_docs=6, seed=4)
        workdir = tmp_path / "work"
        config = dict(shard_size=2, max_resident_shards=2)
        make_pipeline(dataset, **config).run_streaming(
            dataset.corpus.raw_documents, workdir
        )
        rerun = make_pipeline(
            dataset, logistic_config=LogisticConfig(learning_rate=0.05), **config
        ).run_streaming(dataset.corpus.raw_documents, workdir)
        for stage in STREAMING_STAGES:
            assert rerun.stage_stats[stage].n_computed == 0
        assert rerun.stage_stats["marginals"].n_computed == 0
        assert rerun.stage_stats["marginals"].n_resumed == 1
        # The training key chains the model config, so training re-ran.
        assert rerun.train_stats.n_epochs_resumed == 0
        assert rerun.train_stats.n_epochs_run > 0

    def test_editing_one_document_recomputes_exactly_one_shard(self, tmp_path):
        dataset = load_dataset("electronics", n_docs=6, seed=6)
        config = dict(shard_size=2, max_resident_shards=2)
        workdir = tmp_path / "work"
        make_pipeline(dataset, **config).run_streaming(
            dataset.corpus.raw_documents, workdir
        )

        edited = [r for r in dataset.corpus.raw_documents]
        edited[2] = type(edited[2])(
            name=edited[2].name,
            content=edited[2].content + "<p>Revision 2.</p>",
            format=edited[2].format,
            metadata=dict(edited[2].metadata),
            path=edited[2].path,
        )
        rerun = make_pipeline(dataset, **config).run_streaming(edited, workdir)
        # Shard 1 (documents 2-3) is dirty; shards 0 and 2 resume all stages.
        for stage in STREAMING_STAGES:
            assert rerun.stage_stats[stage].n_computed == 1
            assert rerun.stage_stats[stage].n_resumed == 2

    def test_config_swap_crash_does_not_resurrect_stale_checkpoint(
        self, tmp_path, monkeypatch
    ):
        """A crash while re-running a stage under config B must not leave the
        config-A checkpoint record standing over the half-rewritten slab —
        a later run under config A would silently consume B's data."""
        from repro.storage import shards as shards_module

        dataset = load_dataset("electronics", n_docs=4, seed=9)
        config = dict(shard_size=2, max_resident_shards=2)
        workdir = tmp_path / "work"
        reference = make_pipeline(dataset, **config).run_streaming(
            dataset.corpus.raw_documents, workdir
        )

        # Re-run under a different LF set; the kill lands after the new label
        # slab hit disk but before its checkpoint record was written.
        original_write = shards_module.ShardStore.write_label_slab

        def crash_after_write(self, shard, block):
            original_write(self, shard, block)
            raise SimulatedCrash("killed during slab rewrite")

        monkeypatch.setattr(
            shards_module.ShardStore, "write_label_slab", crash_after_write
        )
        swapped = make_pipeline(dataset, **config)
        swapped.update_labeling_functions(dataset.labeling_functions[:-1])
        with pytest.raises(SimulatedCrash):
            swapped.run_streaming(dataset.corpus.raw_documents, workdir)
        monkeypatch.undo()

        # Back under the original config: the crashed shard's label stage must
        # recompute (its record was invalidated before the rewrite), restoring
        # a label matrix identical to the uninterrupted reference.
        rerun = make_pipeline(dataset, **config).run_streaming(
            dataset.corpus.raw_documents, workdir
        )
        assert rerun.stage_stats["label"].n_computed == 1
        assert rerun.stage_stats["label"].n_resumed == rerun.n_shards - 1
        assert np.array_equal(rerun.label_matrix, reference.label_matrix)
        assert np.array_equal(rerun.marginals, reference.marginals)

    def test_config_change_invalidates_downstream_stages_only(self, tmp_path):
        dataset = load_dataset("electronics", n_docs=4, seed=7)
        config = dict(shard_size=2, max_resident_shards=2)
        workdir = tmp_path / "work"
        make_pipeline(dataset, **config).run_streaming(
            dataset.corpus.raw_documents, workdir
        )
        # Swap the LF set: parse/candidates/featurize keys are unchanged, the
        # label stage's operator fingerprint differs -> only it recomputes.
        pipeline = make_pipeline(dataset, **config)
        pipeline.update_labeling_functions(dataset.labeling_functions[:-1])
        rerun = pipeline.run_streaming(dataset.corpus.raw_documents, workdir)
        assert rerun.stage_stats["parse"].n_computed == 0
        assert rerun.stage_stats["candidates"].n_computed == 0
        assert rerun.stage_stats["featurize"].n_computed == 0
        assert rerun.stage_stats["label"].n_computed == rerun.n_shards


class TestQueryableKB:
    """The classification tail publishes a queryable, incrementally-upserted KB."""

    def _segment_files(self, kb_dir):
        from repro.kb.store import KBStore

        pointer = KBStore(kb_dir).read_pointer()
        return {int(r["position"]): r["file"] for r in pointer["segments"]}

    def test_kb_snapshot_matches_extracted_entries(self, tmp_path):
        from repro.kb.store import KBStore

        dataset = load_dataset("electronics", n_docs=8, seed=8)
        result = make_pipeline(dataset, shard_size=2).run_streaming(
            dataset.corpus.raw_documents, tmp_path / "work"
        )
        snapshot = KBStore(result.kb_dir).snapshot()
        assert snapshot.version == result.kb_version == 1
        rows = list(snapshot.iter_rows())
        # Published tuples are exactly the above-threshold classifications.
        assert {(r["doc_name"], tuple(r["entities"])) for r in rows} == (
            result.extracted_entries
        )
        assert all(r["marginal"] > 0.5 for r in rows)
        # Aligned with the global marginals by candidate position.
        for row in rows:
            assert row["marginal"] == pytest.approx(
                float(result.marginals[row["candidate"]])
            )
        # Provenance: positional span keys (stable across processes), the
        # mention text and corpus-relative paths all round-trip.
        assert all(r["spans"] for r in rows)
        for row in rows:
            for _entity_type, span_key, text in row["spans"]:
                assert span_key.startswith("sent:") and text
        assert all(r["doc_path"] for r in rows)

    def test_same_name_documents_keep_distinct_kb_provenance(self, tmp_path):
        """Two same-name documents in one shard must not swap provenance:
        each published tuple's doc_path is the path of the document its
        candidate was actually extracted from (checked against the parsed
        documents in the candidate slab, the parse-time source of truth)."""
        from repro.kb.store import KBStore

        dataset = load_dataset("electronics", n_docs=4, seed=8)
        raws = list(dataset.corpus.raw_documents)

        def rename(raw, path):
            return type(raw)(
                name="datasheet",
                content=raw.content,
                format=raw.format,
                metadata=dict(raw.metadata),
                path=path,
            )

        raws[0] = rename(raws[0], "a/datasheet.html")
        raws[1] = rename(raws[1], "b/datasheet.html")
        result = make_pipeline(dataset, shard_size=4).run_streaming(
            raws, tmp_path / "work"
        )
        store = ShardStore(tmp_path / "work")
        shards = store.open_corpus(raws, 4)
        path_of_candidate = [
            candidate.document.path
            for shard in shards
            for extraction in store.load_candidates(shard)
            for candidate in extraction.candidates
        ]
        rows = list(KBStore(result.kb_dir).snapshot().iter_rows())
        assert rows
        for row in rows:
            assert row["doc_path"] == path_of_candidate[row["candidate"]]
        same_name_paths = {
            row["doc_path"] for row in rows if row["doc_name"] == "datasheet"
        }
        assert same_name_paths == {"a/datasheet.html", "b/datasheet.html"}

    def test_read_side_store_open_creates_nothing(self, tmp_path):
        """Opening/querying a store at a mistyped path must not materialize
        an empty store tree — 'nothing published' has to stay observable."""
        from repro.kb.store import KBStore

        missing = tmp_path / "no-such-workdir" / "kb"
        store = KBStore(missing)
        assert store.snapshot().version == 0
        assert store.snapshot().query(limit=5).total == 0
        assert not missing.exists()

    def test_threshold_edit_republishes_only_affected_segments(self, tmp_path):
        """A threshold edit re-keys the KB stage but every upstream stage —
        slabs, marginals, training — resumes, and only segments whose
        above-threshold tuple set actually changed are rewritten."""
        dataset = load_dataset("electronics", n_docs=8, seed=8)
        workdir = tmp_path / "work"
        config = dict(shard_size=2, max_resident_shards=2)
        first = make_pipeline(dataset, **config).run_streaming(
            dataset.corpus.raw_documents, workdir
        )
        files_before = self._segment_files(first.kb_dir)

        # Derive a new threshold that flips membership in a strict subset of
        # shards, from the first run's marginals and the shard row counts.
        store = ShardStore(workdir)
        shards = store.open_corpus(dataset.corpus.raw_documents, 2)
        counts = [int(s.stages["featurize"]["n_rows"]) for s in shards]
        offsets = np.concatenate([[0], np.cumsum(counts)])

        def changed_shards(new_threshold):
            changed = set()
            for position in range(len(shards)):
                block = first.marginals[offsets[position] : offsets[position + 1]]
                if {i for i, m in enumerate(block) if m > 0.5} != {
                    i for i, m in enumerate(block) if m > new_threshold
                }:
                    changed.add(position)
            return changed

        candidates = sorted(set(np.round(first.marginals, 6)))
        new_threshold, expected_changed = None, None
        for value in candidates:
            if not 0.5 < value < 1.0:
                continue
            changed = changed_shards(value)
            if 0 < len(changed) < len(shards):
                new_threshold, expected_changed = float(value), changed
                break
        assert new_threshold is not None, "corpus yields no partial-change threshold"

        rerun = make_pipeline(dataset, threshold=new_threshold, **config).run_streaming(
            dataset.corpus.raw_documents, workdir
        )
        # Upstream untouched: slabs, marginals and training all resume.
        for stage in STREAMING_STAGES:
            assert rerun.stage_stats[stage].n_computed == 0
        assert rerun.stage_stats["marginals"].n_computed == 0
        assert rerun.train_stats.n_epochs_run == 0
        assert rerun.train_stats.n_epochs_resumed > 0
        # The KB stage re-keys everywhere (threshold is in the KBOp
        # fingerprint) but rewrites only the content-changed segments.
        assert rerun.stage_stats["kb"].n_computed == rerun.n_shards
        files_after = self._segment_files(rerun.kb_dir)
        actually_changed = {
            position
            for position in files_before
            if files_before[position] != files_after[position]
        }
        assert actually_changed == expected_changed
        assert rerun.kb_version == first.kb_version + 1

    def test_lf_edit_republishes_kb_through_chained_keys(self, tmp_path):
        """An LF edit re-runs label → marginals → train → kb while parse,
        candidates and featurize resume — the full chained-key cascade."""
        from repro.kb.store import KBStore

        dataset = load_dataset("electronics", n_docs=8, seed=8)
        workdir = tmp_path / "work"
        config = dict(shard_size=2, max_resident_shards=2)
        make_pipeline(dataset, **config).run_streaming(
            dataset.corpus.raw_documents, workdir
        )
        edited = make_pipeline(dataset, **config)
        edited.update_labeling_functions(dataset.labeling_functions[:-1])
        rerun = edited.run_streaming(dataset.corpus.raw_documents, workdir)
        for stage in ("parse", "candidates", "featurize"):
            assert rerun.stage_stats[stage].n_computed == 0
            assert rerun.stage_stats[stage].n_resumed == rerun.n_shards
        assert rerun.stage_stats["label"].n_computed == rerun.n_shards
        assert rerun.stage_stats["marginals"].n_computed == 1
        assert rerun.train_stats.n_epochs_run > 0
        assert rerun.stage_stats["kb"].n_computed == rerun.n_shards
        # The republished snapshot serves the new classification.
        snapshot = KBStore(rerun.kb_dir).snapshot()
        assert snapshot.version == 2
        assert {
            (r["doc_name"], tuple(r["entities"])) for r in snapshot.iter_rows()
        } == rerun.extracted_entries

    def test_resumed_run_reuses_every_segment(self, tmp_path):
        dataset = load_dataset("electronics", n_docs=6, seed=4)
        workdir = tmp_path / "work"
        first = make_pipeline(dataset).run_streaming(
            dataset.corpus.raw_documents, workdir
        )
        rerun = make_pipeline(dataset).run_streaming(
            dataset.corpus.raw_documents, workdir
        )
        assert rerun.stage_stats["kb"].n_resumed == rerun.n_shards
        assert rerun.stage_stats["kb"].n_computed == 0
        assert self._segment_files(first.kb_dir) == self._segment_files(rerun.kb_dir)

    def test_incremental_store_byte_identical_to_fresh_rebuild(self, tmp_path):
        """Property: a store that went through edits ends byte-identical to a
        fresh streaming run under the final configuration."""
        from repro.kb.store import KBStore

        dataset = load_dataset("electronics", n_docs=8, seed=8)
        config = dict(shard_size=2, max_resident_shards=2)
        incremental_dir = tmp_path / "incremental"
        make_pipeline(dataset, **config).run_streaming(
            dataset.corpus.raw_documents, incremental_dir
        )
        # Two edits: drop an LF, then restore the full set (final = initial).
        edited = make_pipeline(dataset, **config)
        edited.update_labeling_functions(dataset.labeling_functions[:-1])
        edited.run_streaming(dataset.corpus.raw_documents, incremental_dir)
        final = make_pipeline(dataset, **config).run_streaming(
            dataset.corpus.raw_documents, incremental_dir
        )

        fresh_dir = tmp_path / "fresh"
        fresh = make_pipeline(dataset, **config).run_streaming(
            dataset.corpus.raw_documents, fresh_dir
        )

        incremental_store = KBStore(final.kb_dir)
        fresh_store = KBStore(fresh.kb_dir)
        files_incremental = self._segment_files(final.kb_dir)
        files_fresh = self._segment_files(fresh.kb_dir)
        assert files_incremental == files_fresh
        for filename in files_incremental.values():
            assert (incremental_store.segments_dir / filename).read_bytes() == (
                fresh_store.segments_dir / filename
            ).read_bytes()
        assert list(incremental_store.snapshot().iter_rows()) == list(
            fresh_store.snapshot().iter_rows()
        )


class TestMemoryBound:
    def test_resident_shards_respect_lru_bound(self, tmp_path):
        dataset = load_dataset("electronics", n_docs=8, seed=8)
        pipeline = make_pipeline(dataset, shard_size=2, max_resident_shards=1)
        events = []
        pipeline.run_streaming(
            dataset.corpus.raw_documents,
            tmp_path / "work",
            progress=lambda event: events.append(event),
        )
        # All 4 shards x 5 per-shard stages ran (plus one corpus-global
        # marginals boundary and one train event per epoch)...
        shard_events = [e for e in events if e["stage"] in STREAMING_STAGES]
        assert len(shard_events) == 20
        assert sum(1 for e in events if e["stage"] == "marginals") == 1
        assert sum(1 for e in events if e["stage"] == "train") > 0
        # ...and the store never held more than one shard's heavy objects:
        # reopening shows slabs for all shards even though residency was 1.
        store = ShardStore(tmp_path / "work", max_resident_shards=1)
        shards = store.open_corpus(dataset.corpus.raw_documents, 2)
        for shard in shards:
            assert store.load_docs(shard)
        assert store.n_resident == 1


class TestStreamingCLI:
    def test_gen_corpus_and_stream_round_trip(self, tmp_path, capsys):
        from repro.__main__ import main

        corpus_dir = tmp_path / "corpus"
        workdir = tmp_path / "work"
        assert main(
            [
                "gen-corpus", "--dataset", "electronics", "--n-docs", "6",
                "--seed", "3", "--out", str(corpus_dir),
            ]
        ) == 0
        assert (corpus_dir / "corpus.json").exists()
        assert (corpus_dir / "gold.json").exists()

        assert main(
            [
                "stream", "--dataset", "electronics",
                "--corpus-dir", str(corpus_dir), "--workdir", str(workdir),
                "--shard-size", "2", "--max-resident-shards", "1", "--quiet",
            ]
        ) == 0
        output = capsys.readouterr().out
        # 3 shards x 6 per-shard stages (slab stages + KB segments) + 1
        # corpus-global marginals boundary.
        assert "19 computed, 0 resumed" in output
        assert "epochs run, 0 epochs resumed" in output
        assert "KB entries:" in output

        # Re-invoking resumes every boundary from the checkpoint manifest.
        assert main(
            [
                "stream", "--dataset", "electronics",
                "--corpus-dir", str(corpus_dir), "--workdir", str(workdir),
                "--shard-size", "2", "--max-resident-shards", "1", "--quiet",
            ]
        ) == 0
        resumed_output = capsys.readouterr().out
        assert "0 computed, 19 resumed" in resumed_output
        assert "0 epochs run" in resumed_output


class TestNodeSlabSchema:
    """Node-table slabs carry their own schema-versioned stage key; an
    old-generation slab re-derives cleanly on the next run."""

    def test_old_schema_node_slab_rederives_cleanly(self, tmp_path):
        dataset = load_dataset("electronics", n_docs=4, seed=3)
        config = dict(shard_size=2, max_resident_shards=2)
        workdir = tmp_path / "work"
        reference = make_pipeline(dataset, **config).run_streaming(
            dataset.corpus.raw_documents, workdir
        )

        # Simulate a workdir produced under a previous NODE_TABLE_SCHEMA
        # generation: the nodes stage records carry a key the current
        # fingerprint chain can never reproduce.
        import json as json_module

        stage_files = sorted((workdir / "shards").glob("*/stages.json"))
        assert stage_files, "no shard stage records written"
        for stage_file in stage_files:
            records = json_module.loads(stage_file.read_text())
            assert records["nodes"]["complete"]
            records["nodes"]["key"] = "0" * len(records["nodes"]["key"])
            stage_file.write_text(json_module.dumps(records, indent=2, sort_keys=True))

        rerun = make_pipeline(dataset, **config).run_streaming(
            dataset.corpus.raw_documents, workdir, gold=dataset.gold_entries
        )
        # Only the nodes stage recomputes (its key chain is a sibling of the
        # candidate chain, not upstream of it); everything else resumes, and
        # the rewritten slabs decode identically to the reference run.
        assert rerun.stage_stats["nodes"].n_computed == rerun.n_shards
        for stage in ("parse", "candidates", "featurize", "label"):
            assert rerun.stage_stats[stage].n_computed == 0
        assert_streaming_equivalent(
            dataset, rerun, reference_outputs(dataset, **config), workdir
        )

    def test_node_slab_round_trips_per_document_tables(self, tmp_path):
        from repro.data_model.nodes import NODE_COLUMNS, NodeTable, node_table
        from repro.storage.shards import ShardStore

        dataset = load_dataset("electronics", n_docs=4, seed=3)
        workdir = tmp_path / "work"
        make_pipeline(dataset, shard_size=2, max_resident_shards=2).run_streaming(
            dataset.corpus.raw_documents, workdir
        )
        store = ShardStore(workdir)
        for shard in store.open_existing():
            documents = store.load_docs(shard)
            slab = store.load_node_slab(shard)
            assert len(slab) == len(documents)
            for document, arrays in zip(documents, slab):
                decoded = NodeTable.from_arrays(arrays)
                fresh = node_table(document)
                for name in NODE_COLUMNS:
                    assert np.array_equal(decoded[name], getattr(fresh, name))
                assert decoded["tag_vocab"] == fresh.tags
                assert decoded["kind_vocab"] == fresh.kind_names
