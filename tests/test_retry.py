"""The shared bounded-exponential-backoff retry policy."""

from __future__ import annotations

import errno

import pytest

from repro.storage import atomic
from repro.storage.atomic import atomic_write_bytes, clear_retry_events, retry_events
from repro.storage.retry import RetryPolicy


class TestRetryPolicy:
    def test_delays_double_and_cap(self):
        policy = RetryPolicy(attempts=6, base_delay=0.1, max_delay=0.5)
        assert [policy.delay(a) for a in range(5)] == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            policy = RetryPolicy()
            policy.delay(-1)

    def test_call_retries_then_succeeds(self):
        sleeps = []
        policy = RetryPolicy(attempts=3, base_delay=0.1, sleep=sleeps.append)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert len(calls) == 3
        # One backoff per failed attempt, doubling.
        assert sleeps == [0.1, 0.2]

    def test_call_exhausts_attempts(self):
        policy = RetryPolicy(attempts=2, base_delay=0.0)
        calls = []

        def always_fails():
            calls.append(1)
            raise OSError("still broken")

        with pytest.raises(OSError):
            policy.call(always_fails)
        assert len(calls) == 2

    def test_non_retryable_exception_propagates_immediately(self):
        policy = RetryPolicy(attempts=5, base_delay=0.0)
        calls = []

        def fails():
            calls.append(1)
            raise ValueError("logic bug, not transient")

        with pytest.raises(ValueError):
            policy.call(fails, retry_on=(OSError,))
        assert len(calls) == 1

    def test_should_retry_predicate_rejects(self):
        policy = RetryPolicy(attempts=5, base_delay=0.0)
        calls = []

        def fails():
            calls.append(1)
            raise OSError("no errno, not transient")

        with pytest.raises(OSError):
            policy.call(fails, should_retry=lambda e: getattr(e, "errno", None) is not None)
        assert len(calls) == 1

    def test_policy_is_immutable_shared_config(self):
        policy = RetryPolicy()
        with pytest.raises(AttributeError):
            policy.attempts = 9


class TestTransientIORetry:
    """atomic_write_bytes rides the shared policy for EIO/ENOSPC/EAGAIN."""

    def test_transient_eio_is_retried_and_recorded(self, tmp_path, monkeypatch):
        clear_retry_events()
        path = tmp_path / "slab.bin"
        real_replace = atomic.os.replace
        failures = []

        def flaky_replace(src, dst):
            if not failures:
                failures.append(1)
                raise OSError(errno.EIO, "Input/output error")
            return real_replace(src, dst)

        monkeypatch.setattr(atomic.os, "replace", flaky_replace)
        retry = RetryPolicy(attempts=3, base_delay=0.0)
        atomic_write_bytes(path, b"payload", retry=retry)
        assert path.read_bytes() == b"payload"
        events = retry_events()
        assert len(events) == 1 and events[0]["errno"] == errno.EIO

    def test_non_transient_errno_is_not_retried(self, tmp_path, monkeypatch):
        clear_retry_events()
        path = tmp_path / "slab.bin"
        calls = []

        def dying_replace(src, dst):
            calls.append(1)
            raise OSError(errno.EACCES, "Permission denied")

        monkeypatch.setattr(atomic.os, "replace", dying_replace)
        with pytest.raises(OSError):
            atomic_write_bytes(path, b"payload", retry=RetryPolicy(attempts=3, base_delay=0.0))
        assert len(calls) == 1
        assert retry_events() == []

    def test_exhausted_transient_retries_raise(self, tmp_path, monkeypatch):
        clear_retry_events()
        path = tmp_path / "slab.bin"
        calls = []

        def dying_replace(src, dst):
            calls.append(1)
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(atomic.os, "replace", dying_replace)
        with pytest.raises(OSError):
            atomic_write_bytes(path, b"payload", retry=RetryPolicy(attempts=2, base_delay=0.0))
        assert len(calls) == 2
