"""Cross-cutting property-based tests on library invariants.

These complement the per-module suites with randomized invariants on the parts
of the system whose correctness the pipeline silently relies on: document
generation/parsing, candidate extraction, the knowledge base, the label model
and the evaluation metrics.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.candidates.extractor import CandidateExtractor, ContextScope
from repro.datasets import load_dataset
from repro.evaluation.metrics import evaluate_entity_tuples
from repro.nlp.tokenizer import tokenize
from repro.parsing.alignment import align_word_sequences
from repro.parsing.corpus import CorpusParser
from repro.parsing.html_parser import HtmlDocParser
from repro.parsing.pdf_layout import LayoutEngine
from repro.storage.kb import KnowledgeBase, RelationSchema
from repro.supervision.label_model import LabelModel


# --------------------------------------------------------------------- corpora
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_generated_electronics_documents_always_parse(seed):
    dataset = load_dataset("electronics", n_docs=2, seed=seed)
    documents = CorpusParser().parse(dataset.corpus.raw_documents)
    assert len(documents) == 2
    for document in documents:
        assert document.tables(), "every datasheet carries at least one table"
        assert any(len(s.words) > 0 for s in document.sentences())
        # Visual modality present for PDF-style documents.
        assert any(box is not None for s in document.sentences() for box in s.word_boxes)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_generated_genomics_documents_always_parse(seed):
    dataset = load_dataset("genomics", n_docs=2, seed=seed)
    documents = CorpusParser().parse(dataset.corpus.raw_documents)
    for document in documents:
        assert document.tables()
        assert all(box is None for s in document.sentences() for box in s.word_boxes)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_gold_entries_always_reachable_for_genomics(seed):
    """Every gold rsid string must literally appear in its document's XML."""
    dataset = load_dataset("genomics", n_docs=2, seed=seed)
    contents = {r.name: r.content for r in dataset.corpus.raw_documents}
    for document_name, (rsid, phenotype) in dataset.gold_entries:
        assert rsid in contents[document_name]
        assert phenotype in contents[document_name].lower()


# --------------------------------------------------------- candidate extraction
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 1_000))
def test_context_scopes_are_nested(seed):
    """Candidates allowed at a narrower scope are a subset of wider scopes."""
    dataset = load_dataset("electronics", n_docs=2, seed=seed)
    documents = dataset.parse_documents()
    matchers = {t: dataset.matchers[t] for t in dataset.schema.entity_types}

    def extract(scope):
        extractor = CandidateExtractor(dataset.schema.name, matchers, context_scope=scope)
        return {
            (c.document.name, tuple(s.stable_id for s in c.spans))
            for c in extractor.extract(documents).candidates
        }

    sentence_scope = extract(ContextScope.SENTENCE)
    table_scope = extract(ContextScope.TABLE)
    page_scope = extract(ContextScope.PAGE)
    document_scope = extract(ContextScope.DOCUMENT)
    assert sentence_scope <= document_scope
    assert table_scope <= document_scope
    assert page_scope <= document_scope


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 1_000))
def test_throttling_never_adds_candidates(seed):
    dataset = load_dataset("electronics", n_docs=2, seed=seed)
    documents = dataset.parse_documents()
    matchers = {t: dataset.matchers[t] for t in dataset.schema.entity_types}
    unthrottled = CandidateExtractor(dataset.schema.name, matchers).extract(documents)
    throttled = CandidateExtractor(
        dataset.schema.name, matchers, throttlers=dataset.throttlers
    ).extract(documents)
    assert throttled.n_candidates <= unthrottled.n_candidates
    assert set(throttled.candidates) <= set(unthrottled.candidates)


# -------------------------------------------------------------------------- KB
entity_strings = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x7F),
    min_size=1,
    max_size=8,
)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(entity_strings, entity_strings), max_size=20))
def test_kb_insertion_is_idempotent_and_case_insensitive(entries):
    schema = RelationSchema("rel", ("a", "b"))
    kb = KnowledgeBase([schema])
    for a, b in entries:
        kb.add("rel", (a, b))
        kb.add("rel", (a.upper(), b.upper()))
    normalized = {(KnowledgeBase.normalize(a), KnowledgeBase.normalize(b)) for a, b in entries}
    assert kb.size("rel") == len(normalized)
    for a, b in entries:
        assert kb.contains("rel", (a, b))


# ------------------------------------------------------------------ evaluation
gold_entry = st.tuples(st.sampled_from(["d1", "d2", "d3"]), st.tuples(entity_strings))


@settings(max_examples=50, deadline=None)
@given(st.sets(gold_entry, max_size=15), st.sets(gold_entry, max_size=15))
def test_entity_tuple_metrics_are_bounded_and_symmetric_in_counts(extracted, gold):
    result = evaluate_entity_tuples(extracted, gold)
    assert 0.0 <= result.precision <= 1.0
    assert 0.0 <= result.recall <= 1.0
    assert result.true_positives + result.false_positives == len(extracted)
    assert result.true_positives + result.false_negatives == len(gold)


# ----------------------------------------------------------------- label model
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(20, 120))
def test_label_model_better_lfs_get_higher_accuracy(seed, n):
    rng = np.random.default_rng(seed)
    y = rng.choice([-1, 1], size=n)
    L = np.zeros((n, 2), dtype=int)
    # LF 0 is nearly perfect; LF 1 is a coin flip.  Both always vote.
    correct0 = rng.random(n) < 0.95
    L[:, 0] = np.where(correct0, y, -y)
    L[:, 1] = rng.choice([-1, 1], size=n)
    model = LabelModel().fit(L)
    assert model.estimated_accuracies[0] >= model.estimated_accuracies[1]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_label_model_marginals_follow_unanimous_votes(seed):
    rng = np.random.default_rng(seed)
    n = 40
    L = np.zeros((n, 3), dtype=int)
    L[: n // 2, :] = 1
    L[n // 2 :, :] = -1
    marginals = LabelModel().fit_predict_proba(L)
    assert np.all(marginals[: n // 2] > 0.5)
    assert np.all(marginals[n // 2 :] < 0.5)


# --------------------------------------------------------------------- parsing
@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.sampled_from(["alpha", "Beta", "200", "mA", "VCEO", "gamma"]),
        min_size=1,
        max_size=30,
    ),
    st.integers(0, 4),
)
def test_alignment_survives_word_drops(words, n_drops):
    converted = list(words)
    for _ in range(min(n_drops, max(0, len(converted) - 1))):
        converted.pop(len(converted) // 2)
    result = align_word_sequences(words, converted)
    assert result.n_aligned + result.n_unaligned == len(words)
    # Every aligned pair must agree on the word (case-insensitively).
    for original_index, converted_index in enumerate(result.mapping):
        if converted_index is not None:
            assert words[original_index].lower() == converted[converted_index].lower()


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.sampled_from(["Collector", "current", "200", "mA", "SMBT3904", "voltage"]),
        min_size=1,
        max_size=12,
    )
)
def test_layout_assigns_box_to_every_word(words):
    html = f"<section><p>{' '.join(words)}</p></section>"
    document = HtmlDocParser().parse("prop", html)
    LayoutEngine().render(document)
    rendered_words = []
    for sentence in document.sentences():
        assert all(box is not None for box in sentence.word_boxes)
        rendered_words.extend(sentence.words)
    assert rendered_words == tokenize(" ".join(words))
