"""Tests for the NLP substrate: tokenizer, splitter, taggers, embeddings."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.nlp.embeddings import WordEmbeddings
from repro.nlp.lemmatizer import Lemmatizer
from repro.nlp.ner import NerTagger
from repro.nlp.pipeline import NlpPipeline
from repro.nlp.pos_tagger import PosTagger
from repro.nlp.sentence_splitter import split_sentences
from repro.nlp.tokenizer import detokenize, tokenize


class TestTokenizer:
    def test_simple_sentence(self):
        assert tokenize("Collector current IC 200 mA") == ["Collector", "current", "IC", "200", "mA"]

    def test_part_numbers_kept_whole(self):
        assert "SMBT3904" in tokenize("SMBT3904...MMBT3904")
        assert "MMBT3904" in tokenize("SMBT3904...MMBT3904")

    def test_interval_notation(self):
        assert tokenize("-65 ... 150") == ["-65", "...", "150"]

    def test_decimal_and_scientific(self):
        assert tokenize("p = 3e-09 or 1.87") == ["p", "=", "3e-09", "or", "1.87"]

    def test_symbols(self):
        tokens = tokenize("150 °C and 5 %")
        assert "°" in tokens or "°C" in tokens
        assert "%" in tokens

    def test_empty_string(self):
        assert tokenize("") == []

    def test_detokenize_round_trip_tokens(self):
        tokens = ["a", "b", "c"]
        assert tokenize(detokenize(tokens)) == tokens

    @given(st.text(alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F), max_size=40))
    def test_tokens_never_contain_whitespace(self, text):
        for token in tokenize(text):
            assert " " not in token and token != ""


class TestSentenceSplitter:
    def test_two_sentences(self):
        parts = split_sentences("High DC current gain. Low saturation voltage.")
        assert len(parts) == 2

    def test_interval_not_split(self):
        assert len(split_sentences("Storage temperature -65 ... 150")) == 1

    def test_abbreviation_not_split(self):
        parts = split_sentences("See e.g. the table below. Then continue.")
        assert len(parts) == 2

    def test_empty_and_whitespace(self):
        assert split_sentences("") == []
        assert split_sentences("   ") == []

    def test_question_and_exclamation(self):
        parts = split_sentences("Is it rated? Yes! It is.")
        assert len(parts) == 3

    def test_whitespace_normalized(self):
        parts = split_sentences("One   sentence\nacross lines.")
        assert parts == ["One sentence across lines."]


class TestPosTagger:
    def setup_method(self):
        self.tagger = PosTagger()

    def test_numbers_are_cd(self):
        assert self.tagger.tag(["200"]) == ["CD"]
        assert self.tagger.tag(["-65"]) == ["CD"]

    def test_part_number_is_nnp(self):
        assert self.tagger.tag(["SMBT3904"]) == ["NNP"]

    def test_determiner_preposition_conjunction(self):
        tags = self.tagger.tag(["the", "of", "and"])
        assert tags == ["DT", "IN", "CC"]

    def test_verbs(self):
        assert self.tagger.tag(["is"]) == ["VB"]
        assert self.tagger.tag(["provides"]) == ["VB"]

    def test_adverb_and_gerund(self):
        assert self.tagger.tag(["quickly"]) == ["RB"]
        assert self.tagger.tag(["switching"]) == ["VBG"]

    def test_punctuation(self):
        assert self.tagger.tag(["..."]) == ["PUNCT"]

    def test_unit_symbol(self):
        assert self.tagger.tag(["mA"]) == ["SYM"]

    def test_tag_length_matches_input(self):
        tokens = tokenize("The SMBT3904 supports 200 mA continuous current.")
        assert len(self.tagger.tag(tokens)) == len(tokens)


class TestLemmatizer:
    def setup_method(self):
        self.lemmatizer = Lemmatizer()

    def test_plural_nouns(self):
        assert self.lemmatizer.lemmatize_word("transistors") == "transistor"
        assert self.lemmatizer.lemmatize_word("voltages") == "voltage"

    def test_exceptions(self):
        assert self.lemmatizer.lemmatize_word("is") == "be"
        assert self.lemmatizer.lemmatize_word("has") == "have"

    def test_ies_rule(self):
        assert self.lemmatizer.lemmatize_word("studies") == "study"

    def test_ing_and_ed(self):
        assert self.lemmatizer.lemmatize_word("switching") == "switch"
        assert self.lemmatizer.lemmatize_word("measured") == "measur"

    def test_numbers_unchanged(self):
        assert self.lemmatizer.lemmatize_word("200") == "200"
        assert self.lemmatizer.lemmatize_word("3e-09") == "3e-09"

    def test_short_words_lowercased_only(self):
        assert self.lemmatizer.lemmatize_word("ICs") == "ics"[:3]

    def test_sequence_length_preserved(self):
        words = ["Transistors", "are", "devices"]
        assert len(self.lemmatizer.lemmatize(words)) == 3


class TestNerTagger:
    def setup_method(self):
        self.ner = NerTagger()

    def test_number_and_unit(self):
        assert self.ner.tag(["200", "mA"]) == ["NUMBER", "UNIT"]

    def test_part_number(self):
        assert self.ner.tag_word("SMBT3904", 0, ["SMBT3904"]) == "PART"

    def test_rsid(self):
        assert self.ner.tag_word("rs123456", 0, ["rs123456"]) == "RSID"

    def test_phone(self):
        assert self.ner.tag_word("555-123-4567", 0, []) == "PHONE"

    def test_location_hint(self):
        assert self.ner.tag_word("Chicago", 0, []) == "LOCATION"

    def test_custom_dictionary_takes_priority(self):
        ner = NerTagger({"PHENOTYPE": ["asthma"]})
        assert ner.tag_word("asthma", 0, []) == "PHENOTYPE"

    def test_add_dictionary(self):
        self.ner.add_dictionary("COLOR", ["teal"])
        assert self.ner.tag_word("Teal", 0, []) == "COLOR"

    def test_default_other(self):
        assert self.ner.tag_word("voltage", 0, []) == "O"


class TestWordEmbeddings:
    def test_deterministic(self):
        a = WordEmbeddings(dim=16).embed_word("current")
        b = WordEmbeddings(dim=16).embed_word("current")
        assert np.allclose(a, b)

    def test_case_insensitive(self):
        emb = WordEmbeddings(dim=16)
        assert np.allclose(emb.embed_word("Current"), emb.embed_word("current"))

    def test_unit_norm(self):
        emb = WordEmbeddings(dim=32)
        assert np.isclose(np.linalg.norm(emb.embed_word("transistor")), 1.0)

    def test_sequence_shape(self):
        emb = WordEmbeddings(dim=8)
        matrix = emb.embed_sequence(["a", "b", "c"])
        assert matrix.shape == (3, 8)
        assert emb.embed_sequence([]).shape == (0, 8)

    def test_similar_words_share_subword_structure(self):
        emb = WordEmbeddings(dim=32, subword_weight=0.5)
        sim_related = emb.similarity("smbt3904", "smbt3906")
        sim_unrelated = emb.similarity("smbt3904", "asthma")
        assert sim_related > sim_unrelated

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            WordEmbeddings(dim=0)
        with pytest.raises(ValueError):
            WordEmbeddings(dim=4, subword_weight=2.0)

    def test_cache_grows(self):
        emb = WordEmbeddings(dim=8)
        emb.embed_word("a"), emb.embed_word("b")
        assert len(emb) == 2


class TestPipeline:
    def test_annotate_text_produces_parallel_lists(self):
        pipeline = NlpPipeline()
        sentences = pipeline.annotate_text("The SMBT3904 supports 200 mA. It is robust.")
        assert len(sentences) == 2
        for sentence in sentences:
            assert len(sentence.words) == len(sentence.lemmas) == len(sentence.pos_tags) == len(sentence.ner_tags)

    def test_annotate_tokens(self):
        pipeline = NlpPipeline()
        annotated = pipeline.annotate_tokens(["200", "mA"])
        assert annotated.ner_tags == ["NUMBER", "UNIT"]

    def test_empty_text(self):
        assert NlpPipeline().annotate_text("") == []
