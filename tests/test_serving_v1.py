"""The versioned /v1 serving API: envelope, cursors, cache, workers.

The pre-/v1 behaviours (legacy payload shapes, degradation handling) stay
covered by tests/test_serving.py; this module covers what the serving-tier
redesign added — the uniform envelope and structured errors, the deprecation
shim, cursor pagination over HTTP, keep-alive and pipelining, response-cache
correctness across republication (including the canonicalization regression),
and multi-process workers sharing mmap'd segments.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import urllib.error
import urllib.request
from http.client import HTTPConnection
from urllib.parse import urlencode

import pytest

from repro.kb.arena import arena_path_for
from repro.kb.query import KBQuery
from repro.kb.server import create_server
from repro.kb.store import KBStore

from tests.test_kb_store import make_row, publish_rows


@pytest.fixture
def served(tmp_path):
    """One single-worker server over a 3-relation store, plus its thread."""
    store = KBStore(tmp_path / "kb")
    publish_rows(
        store,
        [
            [
                make_row(relation="rel_a", doc="doc0", entities=("alpha", "1"), candidate=0),
                make_row(relation="rel_b", doc="doc0", entities=("beta", "2"), marginal=0.6, candidate=1),
            ],
            [make_row(relation="rel_a", doc="doc1", entities=("alpha", "3"), candidate=2)],
        ],
    )
    server = create_server(tmp_path / "kb", port=0, store=store)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield store, server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def get_v1(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


class TestEnvelope:
    def test_every_v1_endpoint_answers_the_envelope(self, served):
        _, server = served
        for path in ("/v1/query", "/v1/stats", "/v1/health", "/v1/metrics"):
            status, envelope = get_v1(f"{server.url}{path}")
            assert status == 200
            assert set(envelope) == {"data", "error", "meta"}
            assert envelope["error"] is None
            assert isinstance(envelope["meta"]["took_ms"], float)
        # data payloads carry the endpoint's substance
        _, envelope = get_v1(f"{server.url}/v1/query?relation=rel_a")
        assert envelope["data"]["total"] == 2
        _, stats = get_v1(f"{server.url}/v1/stats")
        assert stats["data"]["relations"] == {"rel_a": 2, "rel_b": 1}

    def test_meta_generation_matches_the_snapshot(self, served):
        store, server = served
        _, envelope = get_v1(f"{server.url}/v1/query")
        assert envelope["meta"]["generation"] == store.snapshot().generation
        assert envelope["data"]["version"] == 1

    def test_errors_are_structured_objects(self, served):
        _, server = served
        cases = {
            "/v1/query?limit=0": (400, "bad_request"),
            "/v1/query?relaton=typo": (400, "bad_request"),
            "/v1/nope": (404, "not_found"),
        }
        for path, (want_status, want_code) in cases.items():
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get_v1(f"{server.url}{path}")
            assert excinfo.value.code == want_status
            envelope = json.loads(excinfo.value.read().decode("utf-8"))
            assert envelope["data"] is None
            assert envelope["error"]["code"] == want_code
            assert envelope["error"]["message"]

    def test_offset_is_rejected_on_v1_with_cursor_guidance(self, served):
        _, server = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_v1(f"{server.url}/v1/query?offset=1")
        assert excinfo.value.code == 400
        envelope = json.loads(excinfo.value.read().decode("utf-8"))
        assert "cursor" in envelope["error"]["message"]

    def test_method_not_allowed_is_enveloped_with_allow_header(self, served):
        _, server = served
        request = urllib.request.Request(
            f"{server.url}/v1/query", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 405
        assert excinfo.value.headers["Allow"] == "GET"
        envelope = json.loads(excinfo.value.read().decode("utf-8"))
        assert envelope["error"]["code"] == "method_not_allowed"


class TestDeprecationShim:
    def test_legacy_paths_answer_with_deprecation_headers(self, served):
        _, server = served
        for path in ("/query", "/stats", "/health"):
            with urllib.request.urlopen(f"{server.url}{path}", timeout=10) as response:
                assert response.headers["Deprecation"] == "true"
                assert 'rel="successor-version"' in response.headers["Link"]
                payload = json.loads(response.read().decode("utf-8"))
            # The legacy payload shape is unchanged: no envelope.
            assert "data" not in payload and "meta" not in payload

    def test_v1_paths_are_not_marked_deprecated(self, served):
        _, server = served
        with urllib.request.urlopen(f"{server.url}/v1/query", timeout=10) as response:
            assert response.headers["Deprecation"] is None


class TestCursorPaginationHTTP:
    def test_cursor_walk_covers_exactly_the_full_result(self, served):
        _, server = served
        seen = []
        params = {"limit": 1}
        for _ in range(10):  # bounded: 3 rows -> 3 pages
            _, envelope = get_v1(f"{server.url}/v1/query?{urlencode(params)}")
            page = envelope["data"]
            seen.extend(row["candidate"] for row in page["rows"])
            if page["next_cursor"] is None:
                assert page["has_more"] is False
                break
            params = {"limit": 1, "cursor": page["next_cursor"]}
        _, envelope = get_v1(f"{server.url}/v1/query?limit=1000")
        assert seen == [row["candidate"] for row in envelope["data"]["rows"]]

    def test_malformed_cursor_is_bad_request(self, served):
        _, server = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_v1(f"{server.url}/v1/query?cursor=!!notacursor!!")
        assert excinfo.value.code == 400


class TestConnectionHandling:
    def test_keep_alive_reuses_one_connection(self, served):
        _, server = served
        host, port = server.address
        conn = HTTPConnection(host, port, timeout=10)
        try:
            for _ in range(3):
                conn.request("GET", "/v1/query?relation=rel_a")
                response = conn.getresponse()
                assert response.status == 200
                assert response.headers["Connection"] == "keep-alive"
                response.read()
            conn.request("GET", "/v1/metrics")
            metrics = json.loads(conn.getresponse().read().decode("utf-8"))["data"]
        finally:
            conn.close()
        # All four requests rode one TCP connection.
        assert metrics["connections"]["total"] == 1
        assert metrics["n_requests"] == 4

    def test_pipelined_requests_answer_in_order(self, served):
        _, server = served
        request = b"GET /v1/stats HTTP/1.1\r\nHost: x\r\n\r\n"
        final = b"GET /v1/health HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        with socket.create_connection(server.address, timeout=10) as sock:
            sock.sendall(request + request + final)  # one write, three requests
            blob = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                blob += chunk
        assert blob.count(b"HTTP/1.1 200 OK") == 3
        # Responses came back in request order: stats, stats, health.
        bodies = [part for part in blob.split(b"\r\n\r\n") if part.startswith(b'{"data"')]
        assert b"n_tuples" in bodies[0] and b"n_tuples" in bodies[1]
        assert b'"status"' in bodies[2]

    def test_http10_connection_closes_by_default(self, served):
        _, server = served
        with socket.create_connection(server.address, timeout=10) as sock:
            sock.sendall(b"GET /v1/health HTTP/1.0\r\nHost: x\r\n\r\n")
            blob = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break  # server closed: HTTP/1.0 default
                blob += chunk
        assert b"Connection: close" in blob


class TestResponseCache:
    def test_identical_queries_hit_the_cache(self, served):
        _, server = served
        target = f"{server.url}/v1/query?relation=rel_a&limit=10"
        get_v1(target)
        _, before = get_v1(f"{server.url}/v1/metrics")
        get_v1(target)
        _, after = get_v1(f"{server.url}/v1/metrics")
        assert (
            after["data"]["response_cache"]["hits"]
            > before["data"]["response_cache"]["hits"]
        )

    def test_canonicalization_folds_equivalent_spellings(self, served):
        """Regression: the cache key is the canonical serialization, so
        parameter order, entity case and redundant whitespace must all land
        on one entry instead of fragmenting the cache."""
        _, server = served
        spellings = [
            {"entity": "ALPHA", "limit": "10"},
            {"limit": "10", "entity": "alpha"},
            {"entity": "  alpha  ", "limit": "10"},
        ]
        payloads = []
        hits_before = None
        for i, params in enumerate(spellings):
            _, envelope = get_v1(f"{server.url}/v1/query?{urlencode(params)}")
            payloads.append(envelope["data"])
            metrics = get_v1(f"{server.url}/v1/metrics")[1]["data"]
            if i == 0:
                hits_before = metrics["response_cache"]["hits"]
        assert payloads[0] == payloads[1] == payloads[2]
        # The second and third spellings were answered from the cache.
        assert metrics["response_cache"]["hits"] >= hits_before + 2

    def test_canonical_key_unit_equivalence(self):
        spellings = [
            {"entity": "ALPHA  beta", "limit": "10", "min_marginal": "0.5"},
            {"min_marginal": "0.50", "entity": "alpha beta", "limit": "10"},
        ]
        keys = {
            KBQuery.from_params(params).canonical_key() for params in spellings
        }
        assert len(keys) == 1
        # Different semantics -> different keys.
        assert (
            KBQuery.from_params({"entity": "alpha betas"}).canonical_key()
            not in keys
        )

    def test_republication_rotates_the_generation_and_the_cache(self, served):
        store, server = served
        _, first = get_v1(f"{server.url}/v1/query?limit=1000")
        assert first["data"]["version"] == 1
        writer = KBStore(store.root)
        publish_rows(writer, [[make_row(candidate=41)]], key_prefix="gen2")
        _, second = get_v1(f"{server.url}/v1/query?limit=1000")
        # Same canonical query, fresh generation: the old cache entry is
        # unreachable by construction — no invalidation step exists to forget.
        assert second["data"]["version"] == 2
        assert second["data"]["rows"][0]["candidate"] == 41
        assert second["meta"]["generation"] != first["meta"]["generation"]

    def test_identical_content_republished_still_rotates(self, tmp_path):
        """Version is part of the generation: re-publishing byte-identical
        segments must not serve a stale version number from the cache."""
        store = KBStore(tmp_path / "kb")
        publish_rows(store, [[make_row(candidate=5)]])
        first = store.snapshot()
        publish_rows(store, [[make_row(candidate=5)]])  # same content, adopted
        second = store.snapshot()
        assert second.version == 2
        assert [r["file"] for r in second.records] == [
            r["file"] for r in first.records
        ]
        assert second.generation != first.generation


@pytest.mark.skipif(not hasattr(os, "fork"), reason="requires os.fork")
class TestMultiWorker:
    @pytest.fixture
    def big_store(self, tmp_path):
        """A store whose arena payload dwarfs the per-process key tables."""
        store = KBStore(tmp_path / "kb", segment_mode="mmap")
        filler = "x" * 512
        rows = [
            make_row(
                relation="rel_bulk",
                doc=f"doc{i % 7}",
                entities=(f"entity{i}", filler),
                candidate=i,
            )
            for i in range(3000)
        ]
        publish_rows(store, [rows[:1500], rows[1500:]])
        store.snapshot()  # builds the arenas
        return store

    def test_workers_share_segments_and_answer_consistently(self, big_store):
        server = create_server(big_store.root, port=0, workers=2)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            for _ in range(8):  # fresh connection each time: either worker
                status, envelope = get_v1(f"{server.url}/v1/query?relation=rel_bulk")
                assert status == 200
                assert envelope["data"]["total"] == 3000
            _, metrics = get_v1(f"{server.url}/v1/metrics")
            per_worker = metrics["data"]["per_worker"]
            assert metrics["data"]["workers"] == 2
            pids = {worker["pid"] for worker in per_worker}
            assert len(pids) == 2 and os.getpid() not in pids
            assert metrics["data"]["n_requests"] == sum(
                worker["n_requests"] for worker in per_worker
            )
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    @pytest.mark.skipif(
        not os.path.exists("/proc/self/status"), reason="needs /proc RssAnon"
    )
    def test_opening_the_store_in_another_process_is_not_a_heap_copy(
        self, big_store
    ):
        """Worker N+1's anonymous RSS growth stays far below the segment
        payload: the arena pages are file-backed and shared, only the key
        tables are private."""
        from repro.kb.server import _rss_anon_kb

        arena_kb = sum(
            arena_path_for(big_store.segments_dir / record["file"]).stat().st_size
            for record in big_store.snapshot().records
        ) // 1024
        assert arena_kb > 1024, "fixture too small to measure against"

        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # the "worker": open + fully scan the same store
            status = 1
            try:
                os.close(read_fd)
                before = _rss_anon_kb()
                worker_store = KBStore(big_store.root, segment_mode="mmap")
                snapshot = worker_store.snapshot()
                scanned = 0
                result = snapshot.query(KBQuery(limit=1000))
                scanned += len(result.rows)
                while result.next_cursor is not None:
                    result = snapshot.query(
                        KBQuery(limit=1000, cursor=result.next_cursor)
                    )
                    scanned += len(result.rows)
                grown = _rss_anon_kb() - before
                os.write(write_fd, json.dumps([scanned, grown]).encode())
                status = 0
            finally:
                os._exit(status)
        os.close(write_fd)
        with os.fdopen(read_fd, "rb") as reader:
            payload = reader.read()
        _, exit_status = os.waitpid(pid, 0)
        assert exit_status == 0 and payload, "worker process failed"
        scanned, grown_kb = json.loads(payload)
        assert scanned == 3000  # the scan really touched every row
        # Far below a heap copy: transient scan allocations only.
        assert grown_kb < arena_kb / 2, (
            f"worker grew {grown_kb}KiB anon RSS against {arena_kb}KiB of segment data"
        )


class TestObservability:
    def test_metrics_shapes_and_latency_histogram(self, served):
        _, server = served
        get_v1(f"{server.url}/v1/query")
        _, envelope = get_v1(f"{server.url}/v1/metrics")
        metrics = envelope["data"]
        assert metrics["requests_by_endpoint"]["query"] >= 1
        histogram = metrics["latency_ms"]
        assert len(histogram["counts"]) == len(histogram["bucket_upper_ms"])
        assert sum(histogram["counts"]) >= metrics["n_requests"] - 1
        assert metrics["response_cache"]["max_entries"] > 0
        assert metrics["connections"]["total"] >= 1

    def test_structured_request_log_hook(self, served):
        _, server = served
        records = []
        server.log_handler = records.append
        try:
            get_v1(f"{server.url}/v1/query?relation=rel_a")
        finally:
            server.log_handler = None
        assert len(records) == 1
        record = records[0]
        assert record["path"] == "/v1/query"
        assert record["status"] == 200
        assert record["took_ms"] >= 0
        assert record["worker"] == 0

    def test_health_reports_generation_and_workers(self, served):
        store, server = served
        _, envelope = get_v1(f"{server.url}/v1/health")
        health = envelope["data"]
        assert health["status"] == "ok"
        assert health["generation"] == store.snapshot().generation
        assert health["workers"] == 1


class TestWithinHTTP:
    """The structural ``within`` filter over the versioned HTTP API."""

    @pytest.fixture
    def structural_served(self, tmp_path):
        def row(candidate, interval):
            payload = make_row(doc="doc0", candidate=candidate)
            payload["interval"] = interval
            return payload

        store = KBStore(tmp_path / "kb")
        publish_rows(store, [[row(0, [3, 5]), row(1, [6, 6]), row(2, [12, 14])]])
        server = create_server(tmp_path / "kb", port=0, store=store)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield store, server
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_within_filters_by_containment(self, structural_served):
        _, server = structural_served
        _, envelope = get_v1(f"{server.url}/v1/query?doc=doc0&within=3-6")
        assert [row["candidate"] for row in envelope["data"]["rows"]] == [0, 1]
        _, envelope = get_v1(f"{server.url}/v1/query?doc=doc0&within=12-14")
        assert [row["candidate"] for row in envelope["data"]["rows"]] == [2]
        assert envelope["data"]["rows"][0]["interval"] == [12, 14]

    def test_within_without_doc_is_bad_request(self, structural_served):
        _, server = structural_served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_v1(f"{server.url}/v1/query?within=3-6")
        assert excinfo.value.code == 400
        envelope = json.loads(excinfo.value.read().decode("utf-8"))
        assert "doc" in envelope["error"]["message"]

    def test_malformed_within_is_bad_request(self, structural_served):
        _, server = structural_served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_v1(f"{server.url}/v1/query?doc=doc0&within=6-3")
        assert excinfo.value.code == 400

    def test_within_answers_track_republication(self, structural_served):
        """After a re-publish that moves a tuple's interval, the same
        ``within`` query answers from the new generation — the response
        cache cannot serve the old answer."""
        store, server = structural_served
        _, first = get_v1(f"{server.url}/v1/query?doc=doc0&within=3-6")
        assert [row["candidate"] for row in first["data"]["rows"]] == [0, 1]

        moved = make_row(doc="doc0", candidate=0)
        moved["interval"] = [20, 21]  # no longer inside [3, 6]
        writer = KBStore(store.root)
        publish_rows(writer, [[moved]], key_prefix="gen2")

        _, second = get_v1(f"{server.url}/v1/query?doc=doc0&within=3-6")
        assert second["data"]["version"] == 2
        assert second["data"]["rows"] == []
        _, third = get_v1(f"{server.url}/v1/query?doc=doc0&within=20-21")
        assert [row["candidate"] for row in third["data"]["rows"]] == [0]
