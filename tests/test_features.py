"""Tests for multimodal featurization: per-modality extractors, cache, featurizer."""

import pytest

from repro.candidates.extractor import CandidateExtractor
from repro.candidates.matchers import NumberMatcher, RegexMatcher
from repro.candidates.mentions import Candidate, Mention
from repro.features.cache import MentionFeatureCache
from repro.features.featurizer import FeatureConfig, Featurizer
from repro.features.structural import candidate_structural_features, mention_structural_features
from repro.features.tabular import candidate_tabular_features, mention_tabular_features
from repro.features.textual import candidate_textual_features, mention_textual_features
from repro.features.visual import candidate_visual_features, mention_visual_features
from repro.storage.sparse import COOMatrix, LILMatrix


@pytest.fixture(scope="module")
def candidate(datasheet_document):
    extractor = CandidateExtractor(
        "has_collector_current",
        {
            "transistor_part": RegexMatcher(r"SMBT\d{4}"),
            "current": NumberMatcher(minimum=150, maximum=250),
        },
    )
    candidates = extractor.extract_from_document(datasheet_document).candidates
    target = [c for c in candidates if c.get_mention("current").text == "200"]
    assert target, "expected the (SMBT3904, 200) candidate"
    return target[0]


class TestTextualFeatures:
    def test_mention_word_and_lemma_features(self, candidate):
        features = set(mention_textual_features(candidate.get_mention("transistor_part")))
        assert "TXT_TRANSISTOR_PART_WORD_smbt3904" in features
        assert any(f.startswith("TXT_TRANSISTOR_PART_POS_") for f in features)

    def test_shape_features(self, candidate):
        current_features = set(mention_textual_features(candidate.get_mention("current")))
        assert "TXT_CURRENT_SHAPE_NUMERIC" in current_features
        assert "TXT_CURRENT_SHAPE_HASDIGIT" in current_features

    def test_window_features(self, candidate):
        part_features = set(mention_textual_features(candidate.get_mention("transistor_part")))
        assert any(f.startswith("TXT_TRANSISTOR_PART_RIGHT_") for f in part_features)

    def test_cross_sentence_binary_feature(self, candidate):
        features = set(candidate_textual_features(candidate))
        assert "TXT_DIFFERENT_SENTENCE" in features

    def test_same_sentence_features(self, datasheet_document):
        # Build a candidate whose mentions co-occur in one sentence.
        sentence = next(
            s for s in datasheet_document.sentences() if "Switching" in s.words
        )
        from repro.data_model.context import Span

        a = Mention("a", Span(sentence, 0, 1))
        b = Mention("b", Span(sentence, 2, 3))
        features = set(candidate_textual_features(Candidate("r", [a, b])))
        assert "TXT_SAME_SENTENCE" in features
        assert any(f.startswith("TXT_WORD_DISTANCE_") for f in features)
        assert any(f.startswith("TXT_BETWEEN_") for f in features)


class TestStructuralFeatures:
    def test_tag_features(self, candidate):
        features = set(mention_structural_features(candidate.get_mention("transistor_part")))
        assert "STR_TRANSISTOR_PART_TAG_h1" in features

    def test_ancestor_features(self, candidate):
        features = set(mention_structural_features(candidate.get_mention("current")))
        assert any(f.startswith("STR_CURRENT_ANCESTOR_TAG_") for f in features)

    def test_html_attr_features(self, candidate):
        features = set(mention_structural_features(candidate.get_mention("transistor_part")))
        assert any("HTML_ATTR" in f for f in features)

    def test_binary_common_ancestor(self, candidate):
        features = set(candidate_structural_features(candidate))
        assert any(f.startswith("STR_COMMON_ANCESTOR_") for f in features)
        assert any(f.startswith("STR_LOWEST_ANCESTOR_DEPTH_") for f in features)


class TestTabularFeatures:
    def test_non_tabular_mention_has_no_tabular_features(self, candidate):
        assert list(mention_tabular_features(candidate.get_mention("transistor_part"))) == []

    def test_cell_coordinates(self, candidate):
        features = set(mention_tabular_features(candidate.get_mention("current")))
        assert any(f.startswith("TAB_CURRENT_ROW_NUM_") for f in features)
        assert any(f.startswith("TAB_CURRENT_COL_NUM_") for f in features)

    def test_header_ngram_features(self, candidate):
        features = set(mention_tabular_features(candidate.get_mention("current")))
        assert "TAB_CURRENT_COL_HEAD_value" in features
        assert "TAB_CURRENT_ROW_HEAD_collector" in features

    def test_row_ngram_features(self, candidate):
        features = set(mention_tabular_features(candidate.get_mention("current")))
        assert any(f.startswith("TAB_CURRENT_ROW_ic") or f == "TAB_CURRENT_ROW_ic" for f in features)

    def test_binary_one_tabular_mention(self, candidate):
        features = set(candidate_tabular_features(candidate))
        assert "TAB_ONE_MENTION_TABULAR" in features

    def test_binary_same_table_features(self, datasheet_document):
        table = datasheet_document.tables()[0]
        from repro.data_model.context import Span

        ic_sentence = next(iter(table.cell_at(4, 1).sentences()))
        value_sentence = next(iter(table.cell_at(4, 2).sentences()))
        a = Mention("a", Span(ic_sentence, 0, 1))
        b = Mention("b", Span(value_sentence, 0, 1))
        features = set(candidate_tabular_features(Candidate("r", [a, b])))
        assert "TAB_SAME_TABLE" in features
        assert "TAB_SAME_ROW" in features
        assert any(f.startswith("TAB_SAME_TABLE_MANHATTAN_DIST_") for f in features)


class TestVisualFeatures:
    def test_page_feature(self, candidate):
        features = set(mention_visual_features(candidate.get_mention("current")))
        assert any(f.startswith("VIS_CURRENT_PAGE_") for f in features)

    def test_aligned_ngram_features(self, candidate):
        features = set(mention_visual_features(candidate.get_mention("current")))
        assert any(f.startswith("VIS_CURRENT_ALIGNED_") for f in features)

    def test_binary_same_page_and_alignment(self, candidate):
        features = set(candidate_visual_features(candidate))
        assert "VIS_SAME_PAGE" in features

    def test_no_features_without_boxes(self, genomics_documents):
        # XML documents have no visual modality at all.
        document = genomics_documents[0]
        sentence = next(iter(document.sentences()))
        from repro.data_model.context import Span

        mention = Mention("x", Span(sentence, 0, 1))
        assert list(mention_visual_features(mention)) == []


class TestMentionFeatureCache:
    def test_hit_and_miss_counting(self, candidate):
        cache = MentionFeatureCache()
        mention = candidate.get_mention("current")
        compute = lambda m: ["f1", "f2"]
        first = cache.get_or_compute(mention, "textual", compute)
        second = cache.get_or_compute(mention, "textual", compute)
        assert first == second == ["f1", "f2"]
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_different_extractors_cached_separately(self, candidate):
        cache = MentionFeatureCache()
        mention = candidate.get_mention("current")
        cache.get_or_compute(mention, "textual", lambda m: ["t"])
        result = cache.get_or_compute(mention, "visual", lambda m: ["v"])
        assert result == ["v"]
        assert cache.size == 2

    def test_flush(self, candidate):
        cache = MentionFeatureCache()
        cache.get_or_compute(candidate.get_mention("current"), "textual", lambda m: ["x"])
        cache.flush()
        assert cache.size == 0

    def test_disabled_cache_always_computes(self, candidate):
        cache = MentionFeatureCache(enabled=False)
        mention = candidate.get_mention("current")
        calls = []
        compute = lambda m: calls.append(1) or ["x"]
        cache.get_or_compute(mention, "textual", compute)
        cache.get_or_compute(mention, "textual", compute)
        assert len(calls) == 2
        assert cache.hits == 0


class TestFeatureConfig:
    def test_without(self):
        config = FeatureConfig.without("visual")
        assert not config.visual and config.textual

    def test_only(self):
        config = FeatureConfig.only("tabular")
        assert config.enabled_modalities() == ["tabular"]

    def test_unknown_modality_rejected(self):
        with pytest.raises(ValueError):
            FeatureConfig.without("acoustic")
        with pytest.raises(ValueError):
            FeatureConfig.only("acoustic")


class TestFeaturizer:
    def test_all_modalities_present(self, candidate):
        features = Featurizer().features_for_candidate(candidate)
        prefixes = {f.split("_")[0] for f in features}
        assert {"TXT", "STR", "TAB", "VIS"} <= prefixes

    def test_disabling_modality_removes_features(self, candidate):
        features = Featurizer(FeatureConfig.without("tabular")).features_for_candidate(candidate)
        assert not any(f.startswith("TAB_") for f in features)

    def test_featurize_into_lil_matrix(self, candidate):
        matrix = Featurizer().featurize([candidate])
        assert isinstance(matrix, LILMatrix)
        row = matrix.get_row(candidate.id)
        assert row and all(v == 1.0 for v in row.values())

    def test_featurize_into_custom_matrix(self, candidate):
        matrix = Featurizer().featurize([candidate], matrix=COOMatrix())
        assert isinstance(matrix, COOMatrix)
        assert matrix.n_rows == 1

    def test_cache_used_across_candidates_in_document(self, electronics_documents, electronics_dataset):
        dataset = electronics_dataset
        extractor = CandidateExtractor(
            dataset.schema.name,
            {t: dataset.matchers[t] for t in dataset.schema.entity_types},
        )
        candidates = extractor.extract_from_document(electronics_documents[0]).candidates
        featurizer = Featurizer(FeatureConfig(use_cache=True))
        featurizer.featurize(candidates)
        assert featurizer.cache.hits > 0
        # Cache is flushed after the batch completes.
        assert featurizer.cache.size == 0

    def test_featurization_is_deterministic(self, candidate):
        first = Featurizer().features_for_candidate(candidate)
        second = Featurizer().features_for_candidate(candidate)
        assert first == second


class TestIndexedFeatureEquivalence:
    """Indexed traversal and legacy object walks must emit byte-identical
    feature rows, per modality and end to end."""

    @pytest.fixture(scope="class")
    def corpus_candidates(self, electronics_dataset, electronics_documents):
        dataset = electronics_dataset
        extractor = CandidateExtractor(
            dataset.schema.name,
            {t: dataset.matchers[t] for t in dataset.schema.entity_types},
            throttlers=dataset.throttlers,
        )
        return extractor.extract(electronics_documents).candidates

    def test_feature_rows_identical_across_paths(self, corpus_candidates):
        fast = Featurizer(FeatureConfig(use_index=True)).feature_rows(corpus_candidates)
        legacy = Featurizer(FeatureConfig(use_index=False)).feature_rows(corpus_candidates)
        assert fast == legacy

    @pytest.mark.parametrize("modality", ["textual", "structural", "tabular", "visual"])
    def test_single_modality_identical_across_paths(self, corpus_candidates, modality):
        fast_config = FeatureConfig.only(modality)
        legacy_config = FeatureConfig.only(modality)
        legacy_config.use_index = False
        sample = corpus_candidates[:40]
        fast = Featurizer(fast_config).feature_rows(sample)
        legacy = Featurizer(legacy_config).feature_rows(sample)
        assert fast == legacy

    def test_ordered_feature_lists_identical(self, corpus_candidates):
        """Not just the row dicts: the raw emission order matches too."""
        fast_config, legacy_config = FeatureConfig(), FeatureConfig(use_index=False)
        for candidate in corpus_candidates[:25]:
            fast = Featurizer(fast_config).features_for_candidate(candidate)
            legacy = Featurizer(legacy_config).features_for_candidate(candidate)
            assert fast == legacy

    def test_featurize_csr_matches_feature_rows(self, corpus_candidates):
        featurizer = Featurizer()
        rows = featurizer.feature_rows(corpus_candidates)
        csr = Featurizer().featurize_csr(corpus_candidates)
        assert csr.n_rows == len(rows)
        assert csr.row_ids == [c.id for c in corpus_candidates]
        for candidate, row in zip(corpus_candidates, rows):
            assert csr.get_row(candidate.id) == row

    def test_featurize_csr_equals_lil_to_csr(self, corpus_candidates):
        sample = corpus_candidates[:30]
        direct = Featurizer().featurize_csr(sample)
        via_lil = Featurizer().featurize(sample).to_csr(
            row_order=[c.id for c in sample]
        )
        for candidate in sample:
            assert direct.get_row(candidate.id) == via_lil.get_row(candidate.id)
