"""Tests for the NumPy neural-network substrate, including gradient checks."""

import numpy as np
import pytest

from repro.learning.nn.attention import Attention
from repro.learning.nn.layers import Dense, Parameter, sigmoid, softmax, tanh
from repro.learning.nn.loss import binary_cross_entropy, noise_aware_cross_entropy
from repro.learning.nn.lstm import BiLSTM, LSTMCell
from repro.learning.nn.optimizer import Adam


def numerical_gradient(f, x, epsilon=1e-6):
    """Central-difference numerical gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        index = it.multi_index
        original = x[index]
        x[index] = original + epsilon
        plus = f()
        x[index] = original - epsilon
        minus = f()
        x[index] = original
        grad[index] = (plus - minus) / (2 * epsilon)
        it.iternext()
    return grad


class TestActivations:
    def test_sigmoid_range_and_symmetry(self):
        x = np.linspace(-20, 20, 101)
        s = sigmoid(x)
        assert np.all((s > 0) & (s < 1))
        assert np.allclose(s + sigmoid(-x), 1.0)

    def test_sigmoid_extreme_values_stable(self):
        assert sigmoid(np.array([1000.0]))[0] == pytest.approx(1.0)
        assert sigmoid(np.array([-1000.0]))[0] == pytest.approx(0.0)

    def test_softmax_sums_to_one(self):
        p = softmax(np.array([1.0, 2.0, 3.0]))
        assert p.sum() == pytest.approx(1.0)
        assert p[2] > p[0]

    def test_softmax_shift_invariant(self):
        x = np.array([1.0, 2.0, 3.0])
        assert np.allclose(softmax(x), softmax(x + 100))

    def test_tanh(self):
        assert tanh(np.array([0.0]))[0] == 0.0


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3)
        y, _ = layer.forward(np.ones(4))
        assert y.shape == (3,)

    def test_gradient_check(self):
        rng = np.random.default_rng(0)
        layer = Dense(5, 2, rng=rng)
        x = rng.standard_normal(5)
        target_weights = rng.standard_normal(2)

        def loss_fn():
            y, _ = layer.forward(x)
            return float(target_weights @ y)

        y, cache = layer.forward(x)
        layer.zero_grad()
        dx = layer.backward(target_weights, cache)

        numeric_w = numerical_gradient(loss_fn, layer.W.value)
        numeric_x = numerical_gradient(loss_fn, x)
        assert np.allclose(layer.W.grad, numeric_w, atol=1e-5)
        assert np.allclose(dx, numeric_x, atol=1e-5)

    def test_parameters_listed(self):
        layer = Dense(2, 2)
        names = {p.name for p in layer.parameters()}
        assert names == {"dense.W", "dense.b"}


class TestLSTMCell:
    def test_forward_shapes(self):
        cell = LSTMCell(input_dim=3, hidden_dim=4)
        hidden, cache = cell.forward(np.random.default_rng(0).standard_normal((6, 3)))
        assert hidden.shape == (6, 4)
        assert cache["T"] == 6

    def test_gradient_check_parameters(self):
        rng = np.random.default_rng(1)
        cell = LSTMCell(2, 3, rng=rng)
        inputs = rng.standard_normal((4, 2))
        weights = rng.standard_normal((4, 3))

        def loss_fn():
            hidden, _ = cell.forward(inputs)
            return float(np.sum(weights * hidden))

        hidden, cache = cell.forward(inputs)
        cell.zero_grad()
        d_inputs = cell.backward(weights, cache)

        assert np.allclose(cell.W.grad, numerical_gradient(loss_fn, cell.W.value), atol=1e-4)
        assert np.allclose(cell.U.grad, numerical_gradient(loss_fn, cell.U.value), atol=1e-4)
        assert np.allclose(cell.b.grad, numerical_gradient(loss_fn, cell.b.value), atol=1e-4)
        assert np.allclose(d_inputs, numerical_gradient(loss_fn, inputs), atol=1e-4)

    def test_forget_bias_initialized_to_one(self):
        cell = LSTMCell(2, 3)
        assert np.allclose(cell.b.value[3:6], 1.0)

    def test_empty_sequence(self):
        cell = LSTMCell(2, 3)
        hidden, _ = cell.forward(np.zeros((0, 2)))
        assert hidden.shape == (0, 3)


class TestBiLSTM:
    def test_output_dim_is_double(self):
        bilstm = BiLSTM(3, 5)
        hidden, _ = bilstm.forward(np.random.default_rng(0).standard_normal((4, 3)))
        assert hidden.shape == (4, 10)
        assert bilstm.output_dim == 10

    def test_gradient_check_inputs(self):
        rng = np.random.default_rng(2)
        bilstm = BiLSTM(2, 2, rng=rng)
        inputs = rng.standard_normal((3, 2))
        weights = rng.standard_normal((3, 4))

        def loss_fn():
            hidden, _ = bilstm.forward(inputs)
            return float(np.sum(weights * hidden))

        hidden, cache = bilstm.forward(inputs)
        bilstm.zero_grad()
        d_inputs = bilstm.backward(weights, cache)
        assert np.allclose(d_inputs, numerical_gradient(loss_fn, inputs), atol=1e-4)

    def test_direction_sensitivity(self):
        # Reversing the input sequence must not produce simply reversed outputs
        # (forward and backward cells have different parameters).
        rng = np.random.default_rng(3)
        bilstm = BiLSTM(2, 3, rng=rng)
        inputs = rng.standard_normal((5, 2))
        forward_hidden, _ = bilstm.forward(inputs)
        reversed_hidden, _ = bilstm.forward(inputs[::-1])
        assert not np.allclose(forward_hidden, reversed_hidden[::-1])


class TestAttention:
    def test_output_shape(self):
        attention = Attention(hidden_dim=6, attention_dim=4)
        rep, cache = attention.forward(np.random.default_rng(0).standard_normal((5, 6)))
        assert rep.shape == (4,)
        assert cache["alpha"].shape == (5,)
        assert cache["alpha"].sum() == pytest.approx(1.0)

    def test_gradient_check(self):
        rng = np.random.default_rng(4)
        attention = Attention(hidden_dim=3, attention_dim=3, rng=rng)
        hidden = rng.standard_normal((4, 3))
        weights = rng.standard_normal(3)

        def loss_fn():
            rep, _ = attention.forward(hidden)
            return float(weights @ rep)

        rep, cache = attention.forward(hidden)
        attention.zero_grad()
        d_hidden = attention.backward(weights, cache)

        assert np.allclose(d_hidden, numerical_gradient(loss_fn, hidden), atol=1e-5)
        assert np.allclose(attention.Ww.grad, numerical_gradient(loss_fn, attention.Ww.value), atol=1e-5)
        assert np.allclose(attention.uw.grad, numerical_gradient(loss_fn, attention.uw.value), atol=1e-5)

    def test_attention_focuses_on_high_scoring_position(self):
        attention = Attention(hidden_dim=2, attention_dim=2)
        # Force the context vector to prefer the first dimension.
        attention.Ww.value = np.eye(2)
        attention.bw.value = np.zeros(2)
        attention.uw.value = np.array([10.0, 0.0])
        hidden = np.array([[0.0, 0.0], [3.0, 0.0]])
        _, cache = attention.forward(hidden)
        assert cache["alpha"][1] > cache["alpha"][0]


class TestAdam:
    def test_minimizes_quadratic(self):
        parameter = Parameter(np.array([5.0, -3.0]))
        optimizer = Adam([parameter], learning_rate=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            parameter.grad += 2 * parameter.value  # d/dx of x^2
            optimizer.step()
        assert np.allclose(parameter.value, 0.0, atol=1e-2)

    def test_gradient_clipping(self):
        parameter = Parameter(np.array([0.0]))
        optimizer = Adam([parameter], learning_rate=0.1, clip_norm=1.0)
        parameter.grad += np.array([1e6])
        optimizer.step()
        # A single clipped Adam step moves by at most ~learning_rate.
        assert abs(parameter.value[0]) <= 0.2

    def test_weight_decay_pulls_toward_zero(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = Adam([parameter], learning_rate=0.05, weight_decay=1.0)
        for _ in range(100):
            optimizer.zero_grad()
            optimizer.step()
        assert abs(parameter.value[0]) < 1.0


class TestLosses:
    def test_binary_cross_entropy_perfect_prediction(self):
        loss, _ = binary_cross_entropy(0.999999, 1.0)
        assert loss < 1e-4

    def test_binary_cross_entropy_gradient_sign(self):
        _, grad_low = binary_cross_entropy(0.2, 1.0)
        _, grad_high = binary_cross_entropy(0.8, 0.0)
        assert grad_low < 0  # push probability up
        assert grad_high > 0  # push probability down

    def test_noise_aware_gradient_is_sigmoid_minus_target(self):
        loss, grad = noise_aware_cross_entropy(0.0, 0.75)
        assert grad == pytest.approx(0.5 - 0.75)
        assert loss > 0

    def test_noise_aware_extreme_logits_stable(self):
        loss_pos, grad_pos = noise_aware_cross_entropy(50.0, 1.0)
        loss_neg, grad_neg = noise_aware_cross_entropy(-50.0, 0.0)
        assert loss_pos == pytest.approx(0.0, abs=1e-6)
        assert loss_neg == pytest.approx(0.0, abs=1e-6)
        assert grad_pos == pytest.approx(0.0, abs=1e-6)
        assert grad_neg == pytest.approx(0.0, abs=1e-6)

    def test_numerical_gradient_of_noise_aware_loss(self):
        z, target = 0.3, 0.6
        epsilon = 1e-6
        loss_plus, _ = noise_aware_cross_entropy(z + epsilon, target)
        loss_minus, _ = noise_aware_cross_entropy(z - epsilon, target)
        numeric = (loss_plus - loss_minus) / (2 * epsilon)
        _, analytic = noise_aware_cross_entropy(z, target)
        assert numeric == pytest.approx(analytic, abs=1e-5)
