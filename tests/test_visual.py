"""Tests for bounding boxes and page layout (repro.data_model.visual)."""

import pytest
from hypothesis import given, strategies as st

from repro.data_model.visual import BoundingBox, PageLayout, merge_boxes


def box(x0=0.0, y0=0.0, x1=10.0, y1=10.0, page=0):
    return BoundingBox(page=page, x0=x0, y0=y0, x1=x1, y1=y1)


class TestBoundingBox:
    def test_width_and_height(self):
        b = box(2, 3, 12, 8)
        assert b.width == 10
        assert b.height == 5

    def test_center(self):
        assert box(0, 0, 10, 20).center == (5.0, 10.0)

    def test_degenerate_box_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(page=0, x0=10, y0=0, x1=5, y1=5)

    def test_horizontal_overlap(self):
        assert box(0, 0, 10, 10).horizontal_overlap(box(5, 0, 15, 10)) == 5
        assert box(0, 0, 10, 10).horizontal_overlap(box(20, 0, 25, 10)) == 0

    def test_vertical_overlap(self):
        assert box(0, 0, 10, 10).vertical_overlap(box(0, 8, 10, 20)) == 2

    def test_horizontally_aligned_same_line(self):
        a = box(0, 100, 30, 112)
        b = box(200, 101, 240, 113)
        assert a.is_horizontally_aligned(b)

    def test_horizontally_aligned_rejects_other_page(self):
        a = box(0, 100, 30, 112, page=0)
        b = box(0, 100, 30, 112, page=1)
        assert not a.is_horizontally_aligned(b)

    def test_vertically_aligned_same_column(self):
        a = box(100, 0, 140, 12)
        b = box(101, 300, 141, 312)
        assert a.is_vertically_aligned(b)

    def test_not_vertically_aligned_far_apart(self):
        assert not box(0, 0, 10, 10).is_vertically_aligned(box(200, 0, 210, 10))

    def test_left_and_right_alignment(self):
        a = box(50, 0, 90, 10)
        b = box(50, 100, 120, 110)
        assert a.is_left_aligned(b)
        assert not a.is_right_aligned(b)

    def test_union(self):
        merged = box(0, 0, 10, 10).union(box(5, 5, 20, 30))
        assert (merged.x0, merged.y0, merged.x1, merged.y1) == (0, 0, 20, 30)

    def test_union_rejects_cross_page(self):
        with pytest.raises(ValueError):
            box(page=0).union(box(page=1))

    def test_round_trip_dict(self):
        b = box(1, 2, 3, 4, page=5)
        assert BoundingBox.from_dict(b.to_dict()) == b


class TestMergeBoxes:
    def test_empty_returns_none(self):
        assert merge_boxes([]) is None

    def test_single_box(self):
        b = box()
        assert merge_boxes([b]) == b

    def test_merge_ignores_other_pages(self):
        merged = merge_boxes([box(0, 0, 10, 10, page=0), box(50, 50, 60, 60, page=1)])
        assert merged.page == 0
        assert merged.x1 == 10


class TestPageLayout:
    def test_add_box_and_count(self):
        layout = PageLayout(page=0)
        layout.add_box(box())
        assert layout.n_words == 1

    def test_add_box_wrong_page_rejected(self):
        layout = PageLayout(page=0)
        with pytest.raises(ValueError):
            layout.add_box(box(page=3))

    def test_boxes_in_band(self):
        layout = PageLayout(page=0)
        layout.add_box(box(0, 0, 10, 10))
        layout.add_box(box(0, 100, 10, 110))
        assert len(layout.boxes_in_band(0, 20)) == 1
        assert len(layout.boxes_in_band(0, 200)) == 2


# --------------------------------------------------------------- property tests
coords = st.floats(min_value=0, max_value=1000, allow_nan=False, allow_infinity=False)


@given(x0=coords, y0=coords, dx=coords, dy=coords)
def test_union_contains_both_boxes(x0, y0, dx, dy):
    a = BoundingBox(page=0, x0=x0, y0=y0, x1=x0 + dx, y1=y0 + dy)
    b = BoundingBox(page=0, x0=y0, y0=x0, x1=y0 + dy, y1=x0 + dx)
    merged = a.union(b)
    assert merged.x0 <= min(a.x0, b.x0)
    assert merged.y1 >= max(a.y1, b.y1)
    assert merged.width >= max(a.width, b.width)


@given(x0=coords, y0=coords, dx=coords, dy=coords)
def test_alignment_is_symmetric(x0, y0, dx, dy):
    a = BoundingBox(page=0, x0=x0, y0=y0, x1=x0 + dx + 1, y1=y0 + dy + 1)
    b = BoundingBox(page=0, x0=y0, y0=x0, x1=y0 + dx + 1, y1=x0 + dy + 1)
    assert a.is_horizontally_aligned(b) == b.is_horizontally_aligned(a)
    assert a.is_vertically_aligned(b) == b.is_vertically_aligned(a)
