"""Chaos suite: seeded fault injection end to end.

The contract (docs/RELIABILITY.md): a streaming run under injected faults —
torn writes, bit flips, transient IO errors, killed or hung pool workers —
converges to a published KB *byte-identical* to a fault-free run's, and every
injected fault is visible in telemetry (integrity events, IO-retry events,
pool supervision counters); nothing is silently absorbed.
"""

from __future__ import annotations

import errno
import json
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.pipeline.config import FonduerConfig
from repro.pipeline.fonduer import FonduerPipeline
from repro.storage.atomic import clear_retry_events, retry_events
from repro.testing.faults import FaultPlan, FaultSpec, activate


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("electronics", n_docs=6, seed=0)


def make_pipeline(dataset, **config_kwargs):
    config_kwargs.setdefault("shard_size", 2)
    config_kwargs.setdefault("max_resident_shards", 2)
    config_kwargs.setdefault("integrity", "always")
    return FonduerPipeline(
        schema=dataset.schema,
        matchers=dataset.matchers,
        labeling_functions=dataset.labeling_functions,
        throttlers=dataset.throttlers,
        config=FonduerConfig(**config_kwargs),
    )


def kb_fingerprint(workdir: Path):
    """The published KB's full byte-level identity (pointer + segments)."""
    kb = Path(workdir) / "kb"
    pointer = json.loads((kb / "snapshot.json").read_text())
    segments = {
        path.name: path.read_bytes()
        for path in sorted((kb / "segments").glob("seg-*.json"))
    }
    records = [
        {k: record[k] for k in ("position", "shard_id", "key", "file", "n_rows")}
        for record in pointer["segments"]
    ]
    return records, segments


@pytest.fixture(scope="module")
def baseline(dataset, tmp_path_factory):
    """One fault-free streaming run: the byte-identity reference."""
    workdir = tmp_path_factory.mktemp("baseline")
    result = make_pipeline(dataset).run_streaming(
        dataset.corpus.raw_documents, workdir
    )
    return result, kb_fingerprint(workdir)


class TestSerialWriteFaults:
    def test_write_faults_heal_to_byte_identical_kb(
        self, dataset, baseline, tmp_path
    ):
        """Torn write + bit flip + transient EIO in one run: detected,
        quarantined/retried, healed — and the KB is byte-identical."""
        baseline_result, baseline_kb = baseline
        plan = FaultPlan(
            [
                FaultSpec("torn_write", match="docs.pkl"),
                FaultSpec("bit_flip", match="features.npz"),
                FaultSpec("io_error", match="labels.npy", error_errno=errno.EIO),
            ],
            tmp_path / "faults",
            seed=7,
        )
        clear_retry_events()
        workdir = tmp_path / "work"
        with activate(plan):
            result = make_pipeline(dataset).run_streaming(
                dataset.corpus.raw_documents, workdir
            )

        # Every spec actually fired, exactly once.
        assert plan.fired("torn_write") == 1
        assert plan.fired("bit_flip") == 1
        assert plan.fired("io_error") == 1

        # Detection, not absorption.  The bit-flipped feature slab is read
        # back within this run (the classification tail concatenates it), so
        # verify-on-read catches and heals it in place...
        integrity = result.integrity
        assert integrity["n_corrupt"] >= 1
        assert integrity["n_repaired"] >= 1
        corrupt_artifacts = {
            event["artifact"]
            for event in integrity["events"]
            if event["reason"] != "repaired"
        }
        assert "features.npz" in corrupt_artifacts
        # ...and the transient EIO surfaced in the IO-retry telemetry.
        assert any(event["errno"] == errno.EIO for event in retry_events())

        # The torn docs slab is *latent* this run — the parsed documents
        # stayed LRU-resident, so nothing re-read the corrupt file.  The
        # next resume's force-verified stage_complete check catches it and
        # the repairer re-parses exactly that shard.
        resumed = make_pipeline(dataset).run_streaming(
            dataset.corpus.raw_documents, workdir
        )
        resumed_artifacts = {
            event["artifact"]
            for event in resumed.integrity["events"]
            if event["reason"] != "repaired"
        }
        assert "docs.pkl" in resumed_artifacts
        assert resumed.integrity["n_repaired"] >= 1
        # Healing happened in place: every boundary still counts as resumed.
        assert resumed.n_computed == 0

        # Quarantine holds the corrupt evidence of both detections.
        quarantined = list((workdir / "quarantine").iterdir())
        assert len(quarantined) >= 2

        # The healed run's outputs match the fault-free run exactly.
        assert kb_fingerprint(workdir) == baseline_kb
        assert np.array_equal(result.marginals, baseline_result.marginals)
        assert np.array_equal(resumed.marginals, baseline_result.marginals)

    def test_marginal_slab_bit_flip_heals(self, dataset, baseline, tmp_path):
        """Corpus-global marginals slabs heal through the EM re-run path."""
        baseline_result, baseline_kb = baseline
        plan = FaultPlan(
            [FaultSpec("bit_flip", match="marginals.npy")],
            tmp_path / "faults",
            seed=3,
        )
        workdir = tmp_path / "work"
        with activate(plan):
            result = make_pipeline(dataset).run_streaming(
                dataset.corpus.raw_documents, workdir
            )
        assert plan.fired("bit_flip") == 1
        assert result.integrity["n_repaired"] >= 1
        assert kb_fingerprint(workdir) == baseline_kb
        assert np.array_equal(result.marginals, baseline_result.marginals)


class TestPooledWorkerFaults:
    def test_killed_worker_is_respawned_and_chunk_retried(
        self, dataset, baseline, tmp_path
    ):
        _, baseline_kb = baseline
        plan = FaultPlan(
            [FaultSpec("worker_kill", skip=1)], tmp_path / "faults", seed=11
        )
        workdir = tmp_path / "work"
        with activate(plan):
            result = make_pipeline(
                dataset, executor="process", n_workers=2
            ).run_streaming(dataset.corpus.raw_documents, workdir)
        assert plan.fired("worker_kill") == 1
        assert result.pool_stats is not None
        assert result.pool_stats["n_respawns"] >= 1
        assert kb_fingerprint(workdir) == baseline_kb

    def test_hung_worker_is_reaped_by_watchdog_and_chunk_retried(
        self, dataset, baseline, tmp_path
    ):
        _, baseline_kb = baseline
        plan = FaultPlan(
            [FaultSpec("worker_hang", skip=1, hang_seconds=60.0)],
            tmp_path / "faults",
            seed=13,
        )
        workdir = tmp_path / "work"
        with activate(plan):
            result = make_pipeline(
                dataset,
                executor="process",
                n_workers=2,
                worker_deadline=1.0,
            ).run_streaming(dataset.corpus.raw_documents, workdir)
        assert plan.fired("worker_hang") == 1
        stats = result.pool_stats
        assert stats["watchdog_warnings"] >= 1
        actions = [event["action"] for event in stats["watchdog_events"]]
        assert "warn" in actions and "sigterm" in actions
        assert stats["n_respawns"] >= 1
        assert kb_fingerprint(workdir) == baseline_kb
