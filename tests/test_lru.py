"""The shared bounded-LRU helper and its adoption by the former hand-rolled LRUs."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.storage.lru import BoundedLRU, resolve_bound
from repro.storage.shards import ShardStore


class TestBoundedLRU:
    def test_rejects_non_positive_bound(self):
        with pytest.raises(ValueError):
            BoundedLRU(0)
        with pytest.raises(ValueError):
            resolve_bound(0)
        assert resolve_bound(3) == 3

    def test_eviction_is_least_recently_used(self):
        lru = BoundedLRU(2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # touch "a": "b" becomes coldest
        lru.put("c", 3)
        assert "b" not in lru and "a" in lru and "c" in lru
        assert lru.evictions == 1
        assert len(lru) == 2

    def test_never_holds_more_than_bound(self):
        lru = BoundedLRU(3)
        for i in range(10):
            lru.put(i, i)
            assert len(lru) <= 3
        assert lru.evictions == 7

    def test_get_or_load_counts_only_misses(self):
        lru = BoundedLRU(2)
        calls = []
        for key in ["x", "y", "x", "x", "y"]:
            lru.get_or_load(key, lambda key=key: calls.append(key) or key.upper())
        assert calls == ["x", "y"]
        assert lru.loads == 2

    def test_pop_does_not_count_as_eviction(self):
        lru = BoundedLRU(2)
        lru.put("a", 1)
        assert lru.pop("a") == 1
        assert lru.pop("missing", "default") == "default"
        assert lru.evictions == 0

    def test_clear_counts_evictions(self):
        lru = BoundedLRU(4)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.clear() == 2
        assert lru.evictions == 2 and len(lru) == 0


class TestReconciledBounds:
    """All former hand-rolled LRUs now validate bounds identically.

    ``SlabBatchSource``/``SlabLabelSource`` used to clamp an invalid bound to
    1 silently while ``ShardStore`` raised; one strict rule now.
    """

    def test_shard_store_rejects_zero(self, tmp_path):
        with pytest.raises(ValueError):
            ShardStore(tmp_path, max_resident_shards=0)

    def test_slab_sources_reject_zero(self):
        from repro.learning.trainer import SlabBatchSource, SlabLabelSource

        shard = SimpleNamespace(
            stages={"featurize": {"n_rows": 1}, "label": {"n_rows": 1}}
        )

        class OneRowStore:
            def load_label_slab(self, shard):
                return np.zeros((1, 2))

        with pytest.raises(ValueError):
            SlabBatchSource(object(), [shard], max_resident=0)
        with pytest.raises(ValueError):
            SlabLabelSource(OneRowStore(), [shard], max_resident=0)
        # Bound 1 (the old clamp target) still works.
        assert SlabLabelSource(OneRowStore(), [shard], max_resident=1).n_lfs == 2
