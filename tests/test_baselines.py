"""Tests for the oracle baselines (Text/Table/Ensemble) and SRV."""

import numpy as np
import pytest

from repro.baselines.ensemble import EnsembleBaseline
from repro.baselines.srv import SRVBaseline
from repro.baselines.table_ie import TableIEBaseline
from repro.baselines.text_ie import TextIEBaseline
from repro.datasets import load_dataset
from repro.evaluation.metrics import evaluate_binary
from repro.supervision.gold import gold_labels_for_candidates
from repro.candidates.extractor import CandidateExtractor


def matchers_of(dataset):
    return {t: dataset.matchers[t] for t in dataset.schema.entity_types}


class TestOracleBaselinesElectronics:
    @pytest.fixture(scope="class")
    def setup(self, electronics_dataset, electronics_documents):
        return electronics_dataset, electronics_documents

    def test_text_oracle_has_low_recall(self, setup):
        dataset, documents = setup
        baseline = TextIEBaseline(dataset.schema.name, matchers_of(dataset))
        result = baseline.evaluate_oracle(documents, dataset.gold_entries)
        assert result.metrics.recall < 0.3
        assert result.metrics.precision in (0.0, 1.0)

    def test_table_oracle_partial_recall(self, setup):
        dataset, documents = setup
        baseline = TableIEBaseline(dataset.schema.name, matchers_of(dataset))
        result = baseline.evaluate_oracle(documents, dataset.gold_entries)
        assert result.metrics.recall < 0.6

    def test_ensemble_at_least_as_good_as_parts(self, setup):
        dataset, documents = setup
        text = TextIEBaseline(dataset.schema.name, matchers_of(dataset))
        table = TableIEBaseline(dataset.schema.name, matchers_of(dataset))
        ensemble = EnsembleBaseline(dataset.schema.name, matchers_of(dataset))
        recall_text = text.evaluate_oracle(documents, dataset.gold_entries).metrics.recall
        recall_table = table.evaluate_oracle(documents, dataset.gold_entries).metrics.recall
        recall_ensemble = ensemble.evaluate_oracle(documents, dataset.gold_entries).metrics.recall
        assert recall_ensemble >= max(recall_text, recall_table)

    def test_reachable_entries_are_document_scoped(self, setup):
        dataset, documents = setup
        baseline = TableIEBaseline(dataset.schema.name, matchers_of(dataset))
        for document_name, _ in baseline.reachable_entries(documents):
            assert document_name.startswith("elec_")


class TestOracleBaselinesGenomics:
    def test_no_full_tuples_within_sentence_or_table(self, genomics_dataset, genomics_documents):
        dataset, documents = genomics_dataset, genomics_documents
        text = TextIEBaseline(dataset.schema.name, matchers_of(dataset))
        table = TableIEBaseline(dataset.schema.name, matchers_of(dataset))
        assert text.evaluate_oracle(documents, dataset.gold_entries).metrics.f1 == 0.0
        assert table.evaluate_oracle(documents, dataset.gold_entries).metrics.f1 == 0.0


class TestSRVBaseline:
    def test_srv_uses_only_html_features(self, electronics_candidates):
        candidates, _ = electronics_candidates
        srv = SRVBaseline()
        rows = srv._feature_rows(candidates[:5])
        for row in rows:
            assert all(name.startswith(("TXT_", "STR_")) for name in row)

    def test_srv_trains_and_predicts(self, electronics_candidates):
        candidates, gold = electronics_candidates
        targets = (gold.astype(float) + 1.0) / 2.0
        srv = SRVBaseline().fit(candidates, targets)
        predictions = srv.predict(candidates)
        assert set(np.unique(predictions)) <= {-1, 1}
        proba = srv.predict_proba(candidates[:3])
        assert np.all((proba >= 0) & (proba <= 1))

    def test_srv_worse_than_full_feature_model_on_ads(self):
        """Table 5's shape: HTML-only features lose to the full multimodal set."""
        from repro.features.featurizer import Featurizer
        from repro.learning.logistic import SparseLogisticRegression

        dataset = load_dataset("advertisements", n_docs=14, seed=3)
        documents = dataset.parse_documents()
        extractor = CandidateExtractor(
            dataset.schema.name, matchers_of(dataset), throttlers=dataset.throttlers
        )
        candidates = extractor.extract(documents).candidates
        gold = gold_labels_for_candidates(candidates, dataset.corpus.gold_by_document())
        targets = (gold.astype(float) + 1.0) / 2.0
        split = len(candidates) // 2
        srv = SRVBaseline().fit(candidates[:split], targets[:split])
        srv_f1 = evaluate_binary(srv.predict(candidates[split:]), gold[split:]).f1

        featurizer = Featurizer()
        rows = [
            {name: 1.0 for name in featurizer.features_for_candidate(c)} for c in candidates
        ]
        full = SparseLogisticRegression().fit(rows[:split], targets[:split])
        full_f1 = evaluate_binary(full.predict(rows[split:]), gold[split:]).f1
        # Allow a small tolerance: on this scaled-down corpus the two models are
        # close; the paper's 2.3x gap appears on the full ADS corpus.
        assert full_f1 >= srv_f1 - 0.05
