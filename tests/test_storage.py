"""Tests for the storage substrate: relational engine, sparse matrices, KB."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.database import ColumnType, Database, TableSchema
from repro.storage.kb import KnowledgeBase, RelationSchema
from repro.storage.sparse import COOMatrix, LILMatrix


class TestTableSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            TableSchema.create("t", [("a", ColumnType.TEXT), ("a", ColumnType.TEXT)])

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(ValueError):
            TableSchema.create("t", [("a", ColumnType.TEXT)], primary_key="b")

    def test_column_type_lookup(self):
        schema = TableSchema.create("t", [("a", ColumnType.INTEGER)])
        assert schema.column_type("a") is ColumnType.INTEGER
        with pytest.raises(KeyError):
            schema.column_type("missing")

    def test_type_validation(self):
        assert ColumnType.INTEGER.validate(5)
        assert not ColumnType.INTEGER.validate(5.5)
        assert not ColumnType.INTEGER.validate(True)
        assert ColumnType.REAL.validate(5)
        assert ColumnType.TEXT.validate("x")
        assert ColumnType.BOOLEAN.validate(False)
        assert ColumnType.JSON.validate({"a": [1]})
        assert ColumnType.TEXT.validate(None)  # NULLs always allowed


class TestDatabase:
    def make_db(self):
        db = Database("test")
        table = db.create_table(
            "parts",
            [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT), ("current", ColumnType.REAL)],
            primary_key="id",
        )
        table.insert({"id": 1, "name": "SMBT3904", "current": 200.0})
        table.insert({"id": 2, "name": "MMBT3904", "current": 200.0})
        table.insert({"id": 3, "name": "BC547", "current": 100.0})
        return db

    def test_insert_and_count(self):
        db = self.make_db()
        assert db.table("parts").count() == 3

    def test_duplicate_table_rejected_unless_if_not_exists(self):
        db = self.make_db()
        with pytest.raises(ValueError):
            db.create_table("parts", [("id", ColumnType.INTEGER)])
        same = db.create_table("parts", [("id", ColumnType.INTEGER)], if_not_exists=True)
        assert same is db.table("parts")

    def test_primary_key_uniqueness(self):
        db = self.make_db()
        with pytest.raises(ValueError):
            db.table("parts").insert({"id": 1, "name": "dup", "current": 1.0})

    def test_get_by_primary_key(self):
        db = self.make_db()
        assert db.table("parts").get(2)["name"] == "MMBT3904"
        assert db.table("parts").get(99) is None

    def test_select_where(self):
        db = self.make_db()
        rows = db.table("parts").select(where={"current": 200.0})
        assert {r["name"] for r in rows} == {"SMBT3904", "MMBT3904"}

    def test_select_predicate_order_limit(self):
        db = self.make_db()
        rows = db.table("parts").select(
            predicate=lambda r: r["current"] >= 100, order_by="name", limit=2
        )
        assert [r["name"] for r in rows] == ["BC547", "MMBT3904"]

    def test_select_with_index(self):
        db = self.make_db()
        db.table("parts").create_index("current")
        rows = db.table("parts").select(where={"current": 100.0})
        assert len(rows) == 1

    def test_update(self):
        db = self.make_db()
        updated = db.table("parts").update(lambda r: r["name"] == "BC547", {"current": 150.0})
        assert updated == 1
        assert db.table("parts").get(3)["current"] == 150.0

    def test_update_rebuilds_only_indexes_of_changed_columns(self):
        db = self.make_db()
        table = db.table("parts")
        table.create_index("name")
        table.create_index("current")
        name_index_before = table._indexes["name"]
        current_index_before = table._indexes["current"]
        pk_index_before = table._pk_index
        table.update(lambda r: r["name"] == "BC547", {"current": 150.0})
        # The index on the untouched column (and the pk index) is not rebuilt...
        assert table._indexes["name"] is name_index_before
        assert table._pk_index is pk_index_before
        # ...while the index on the changed column is, and answers correctly.
        assert table._indexes["current"] is not current_index_before
        assert [r["name"] for r in table.select(where={"current": 150.0})] == ["BC547"]
        assert table.select(where={"current": 100.0}) == []
        assert {r["name"] for r in table.select(where={"name": "BC547"})} == {"BC547"}

    def test_update_of_primary_key_rebuilds_pk_index(self):
        db = self.make_db()
        table = db.table("parts")
        table.update(lambda r: r["name"] == "BC547", {"id": 30})
        assert table.get(30)["name"] == "BC547"
        assert table.get(3) is None

    def test_update_without_matches_leaves_indexes_alone(self):
        db = self.make_db()
        table = db.table("parts")
        table.create_index("current")
        index_before = table._indexes["current"]
        assert table.update(lambda r: False, {"current": 999.0}) == 0
        assert table._indexes["current"] is index_before

    def test_delete(self):
        db = self.make_db()
        deleted = db.table("parts").delete(lambda r: r["current"] == 200.0)
        assert deleted == 2
        assert db.table("parts").count() == 1

    def test_unknown_column_rejected(self):
        db = self.make_db()
        with pytest.raises(KeyError):
            db.table("parts").insert({"id": 9, "bogus": "x"})

    def test_type_mismatch_rejected(self):
        db = self.make_db()
        with pytest.raises(TypeError):
            db.table("parts").insert({"id": "not-an-int", "name": "x", "current": 1.0})

    def test_save_and_load_round_trip(self, tmp_path):
        db = self.make_db()
        path = tmp_path / "db.json"
        db.save(path)
        loaded = Database.load(path)
        assert loaded.table("parts").count() == 3
        assert loaded.table("parts").get(1)["name"] == "SMBT3904"

    def test_drop_table(self):
        db = self.make_db()
        db.drop_table("parts")
        assert not db.has_table("parts")
        with pytest.raises(KeyError):
            db.table("parts")


class TestSparseMatrices:
    @pytest.mark.parametrize("matrix_cls", [LILMatrix, COOMatrix])
    def test_set_and_get_row(self, matrix_cls):
        matrix = matrix_cls()
        matrix.set(0, "f1", 1.0)
        matrix.set(0, "f2", 2.0)
        matrix.set(1, "f1", -1.0)
        assert matrix.get_row(0) == {"f1": 1.0, "f2": 2.0}
        assert matrix.get_row(1) == {"f1": -1.0}
        assert matrix.n_rows == 2
        assert matrix.n_columns == 2

    @pytest.mark.parametrize("matrix_cls", [LILMatrix, COOMatrix])
    def test_overwrite_value(self, matrix_cls):
        matrix = matrix_cls()
        matrix.set(0, "f", 1.0)
        matrix.set(0, "f", 3.0)
        assert matrix.get(0, "f") == 3.0
        assert matrix.nnz() == 1

    @pytest.mark.parametrize("matrix_cls", [LILMatrix, COOMatrix])
    def test_missing_returns_zero(self, matrix_cls):
        matrix = matrix_cls()
        assert matrix.get(5, "nope") == 0.0
        assert matrix.get_row(5) == {}

    @pytest.mark.parametrize("matrix_cls", [LILMatrix, COOMatrix])
    def test_to_dense(self, matrix_cls):
        matrix = matrix_cls()
        matrix.set(0, "a", 1.0)
        matrix.set(1, "b", -1.0)
        dense = matrix.to_dense(row_order=[0, 1])
        assert dense.shape == (2, 2)
        assert dense[0, 0] == 1.0 and dense[1, 1] == -1.0

    @pytest.mark.parametrize("matrix_cls", [LILMatrix, COOMatrix])
    def test_density(self, matrix_cls):
        matrix = matrix_cls()
        matrix.set(0, "a", 1.0)
        matrix.set(1, "b", 1.0)
        assert matrix.density() == pytest.approx(0.5)

    def test_lil_zero_value_removes_entry(self):
        matrix = LILMatrix()
        matrix.set(0, "a", 1.0)
        matrix.set(0, "a", 0.0)
        assert matrix.nnz() == 0

    def test_coo_latest_value_wins(self):
        matrix = COOMatrix()
        matrix.set(0, "lf", 1.0)
        matrix.set(0, "lf", -1.0)
        assert matrix.get(0, "lf") == -1.0
        triples = list(matrix.triples())
        assert triples == [(0, "lf", -1.0)]

    def test_coo_delete_column(self):
        matrix = COOMatrix()
        matrix.set(0, "lf1", 1.0)
        matrix.set(1, "lf1", 1.0)
        matrix.set(0, "lf2", -1.0)
        removed = matrix.delete_column("lf1")
        assert removed == 2
        assert matrix.get(0, "lf1") == 0.0
        assert matrix.get(0, "lf2") == -1.0

    def test_lil_from_coo_conversion(self):
        coo = COOMatrix()
        coo.set(0, "a", 1.0)
        coo.set(2, "b", -1.0)
        coo.set(0, "a", 2.0)
        lil = LILMatrix.from_coo(coo)
        assert lil.get(0, "a") == 2.0
        assert lil.get(2, "b") == -1.0
        assert lil.nnz() == 2

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 10), st.sampled_from(["a", "b", "c", "d"]), st.floats(-2, 2, allow_nan=False)),
            max_size=60,
        )
    )
    def test_lil_and_coo_agree(self, entries):
        lil, coo = LILMatrix(), COOMatrix()
        for row, column, value in entries:
            lil.set(row, column, value)
            coo.set(row, column, value)
        for row, column, _ in entries:
            assert lil.get(row, column) == pytest.approx(coo.get(row, column))


class TestKnowledgeBase:
    def make_kb(self):
        schema = RelationSchema("has_collector_current", ("transistor_part", "current"))
        return KnowledgeBase([schema]), schema

    def test_relation_schema_validation(self):
        with pytest.raises(ValueError):
            RelationSchema("r", ())
        with pytest.raises(ValueError):
            RelationSchema("r", ("a", "a"))

    def test_to_sql(self):
        schema = RelationSchema("has_collector_current", ("transistor_part", "current"))
        sql = schema.to_sql()
        assert sql.startswith("CREATE TABLE has_collector_current")
        assert "transistor_part varchar" in sql

    def test_add_and_contains(self):
        kb, schema = self.make_kb()
        assert kb.add(schema.name, ("SMBT3904", "200"))
        assert kb.contains(schema.name, ("smbt3904", "200"))
        assert kb.size(schema.name) == 1

    def test_duplicate_not_added(self):
        kb, schema = self.make_kb()
        kb.add(schema.name, ("SMBT3904", "200"))
        assert not kb.add(schema.name, (" smbt3904 ", "200"))
        assert kb.size() == 1

    def test_arity_checked(self):
        kb, schema = self.make_kb()
        with pytest.raises(ValueError):
            kb.add(schema.name, ("only-one",))

    def test_unknown_relation(self):
        kb, _ = self.make_kb()
        with pytest.raises(KeyError):
            kb.add("nope", ("a", "b"))

    def test_entries_and_iteration(self):
        kb, schema = self.make_kb()
        kb.add_many(schema.name, [("A", "1"), ("B", "2")])
        assert set(kb.entries(schema.name)) == {("a", "1"), ("b", "2")}
        assert len(list(iter(kb))) == 2

    def test_save(self, tmp_path):
        kb, schema = self.make_kb()
        kb.add(schema.name, ("A", "1"))
        path = tmp_path / "kb.json"
        kb.save(str(path))
        assert path.exists()


class TestCSRMatrix:
    def make_rows(self):
        return [
            {"a": 1.0, "b": 2.0},
            {},
            {"b": 3.0, "c": 1.0},
            {"a": 4.0},
        ]

    def test_from_rows_roundtrip(self):
        from repro.storage.sparse import CSRMatrix

        rows = self.make_rows()
        csr = CSRMatrix.from_rows(rows, row_ids=[10, 11, 12, 13])
        assert csr.n_rows == 4
        assert csr.nnz() == 5
        assert csr.get_row(10) == {"a": 1.0, "b": 2.0}
        assert csr.get_row(11) == {}
        assert csr.get(12, "b") == 3.0
        assert csr.get(12, "missing") == 0.0
        assert csr.get(99, "a") == 0.0

    def test_immutable(self):
        from repro.storage.sparse import CSRMatrix

        csr = CSRMatrix.from_rows(self.make_rows())
        with pytest.raises(TypeError):
            csr.set(0, "a", 1.0)

    def test_lil_and_coo_to_csr_match_to_dense(self):
        import numpy as np

        from repro.storage.sparse import COOMatrix, LILMatrix

        for source in (LILMatrix(), COOMatrix()):
            source.set(0, "x", 1.0)
            source.set(2, "y", -1.0)
            source.set(2, "x", 5.0)
            csr = source.to_csr()
            assert np.array_equal(csr.to_dense(), source.to_dense())
            assert csr.column_names == source.column_names
            assert csr.nnz() == source.nnz()

    def test_coo_latest_value_wins_in_csr(self):
        from repro.storage.sparse import COOMatrix

        coo = COOMatrix()
        coo.set(0, "x", 1.0)
        coo.set(0, "x", 7.0)
        assert coo.to_csr().get(0, "x") == 7.0

    def test_dot_matches_dense_matvec(self):
        import numpy as np

        from repro.storage.sparse import CSRMatrix

        csr = CSRMatrix.from_rows(self.make_rows())
        weights = np.array([0.5, -1.0, 2.0])  # a, b, c
        assert np.allclose(csr.dot(weights), csr.to_dense() @ weights)
        with pytest.raises(ValueError):
            csr.dot(np.zeros(99))

    def test_dot_handles_empty_rows_and_matrix(self):
        import numpy as np

        from repro.storage.sparse import CSRMatrix

        empty = CSRMatrix.from_rows([{}, {}])
        assert np.array_equal(empty.dot(np.zeros(0)), np.zeros(2))

    def test_select_positions(self):
        import numpy as np

        from repro.storage.sparse import CSRMatrix

        csr = CSRMatrix.from_rows(self.make_rows(), row_ids=[10, 11, 12, 13])
        subset = csr.select_positions([2, 0])
        assert subset.row_ids == [12, 10]
        assert subset.get_row(12) == {"b": 3.0, "c": 1.0}
        assert np.array_equal(subset.to_dense(), csr.to_dense()[[2, 0]])

    def test_to_csr_respects_row_order(self):
        from repro.storage.sparse import LILMatrix

        lil = LILMatrix()
        lil.set(5, "x", 1.0)
        lil.set(1, "y", 2.0)
        csr = lil.to_csr(row_order=[5, 1])
        assert csr.row_ids == [5, 1]
        assert list(csr.rows()) == [5, 1]
