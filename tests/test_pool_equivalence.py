"""Byte-identical outputs: persistent pool vs serial, in-memory + streaming.

The executor is a throughput knob — every strategy must produce the same
bytes.  These tests pin that contract for the persistent worker pool across
parse → candidates → featurize → label on both execution paths, and check
that a streaming run killed at a checkpoint boundary under the pool resumes
with unchanged counts and identical final outputs (including when the
resuming process uses a different executor than the killed one).
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.pipeline.config import FonduerConfig
from repro.pipeline.fonduer import FonduerPipeline

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="host platform is spawn-only",
)

N_DOCS = 12
SHARD_SIZE = 4


def _config(executor: str) -> FonduerConfig:
    return FonduerConfig(
        executor=executor,
        n_workers=2,
        shard_size=SHARD_SIZE,
        max_resident_shards=2,
    )


def _pipeline(executor: str):
    dataset = load_dataset("electronics", n_docs=N_DOCS, seed=7)
    pipeline = FonduerPipeline(
        schema=dataset.schema,
        matchers=dataset.matchers,
        labeling_functions=dataset.labeling_functions,
        throttlers=dataset.throttlers,
        config=_config(executor),
    )
    return dataset, pipeline


@pytest.fixture(scope="module")
def serial_streaming(tmp_path_factory):
    dataset, pipeline = _pipeline("serial")
    workdir = tmp_path_factory.mktemp("serial-stream")
    return pipeline.run_streaming(
        dataset.corpus.raw_documents, workdir, gold=dataset.gold_entries
    )


@pytest.fixture(scope="module")
def serial_inmemory():
    dataset, pipeline = _pipeline("serial")
    return pipeline.run_from_raw(
        dataset.corpus.raw_documents, gold=dataset.gold_entries
    )


def _assert_streaming_identical(result, reference) -> None:
    assert np.array_equal(result.marginals, reference.marginals)
    assert np.array_equal(result.label_matrix, reference.label_matrix)
    assert (
        result.features.to_dense().tobytes()
        == reference.features.to_dense().tobytes()
    )
    assert result.features.column_names == reference.features.column_names
    assert result.extracted_entries == reference.extracted_entries
    assert result.metrics == reference.metrics
    assert result.n_candidates == reference.n_candidates
    assert result.mentions_by_type == reference.mentions_by_type


@fork_only
class TestStreamingEquivalence:
    def test_pool_streaming_matches_serial_bytes(self, tmp_path, serial_streaming):
        dataset, pipeline = _pipeline("pool")
        result = pipeline.run_streaming(
            dataset.corpus.raw_documents, tmp_path, gold=dataset.gold_entries
        )
        _assert_streaming_identical(result, serial_streaming)
        assert result.n_computed == serial_streaming.n_computed
        assert result.n_resumed == serial_streaming.n_resumed == 0

    def test_process_executor_also_streams_through_pool(
        self, tmp_path, serial_streaming
    ):
        dataset, pipeline = _pipeline("process")
        result = pipeline.run_streaming(
            dataset.corpus.raw_documents, tmp_path, gold=dataset.gold_entries
        )
        _assert_streaming_identical(result, serial_streaming)

    def test_pool_streaming_is_deterministic_across_runs(
        self, tmp_path_factory, serial_streaming
    ):
        dataset, pipeline = _pipeline("pool")
        first = pipeline.run_streaming(
            dataset.corpus.raw_documents,
            tmp_path_factory.mktemp("pool-a"),
            gold=dataset.gold_entries,
        )
        dataset, pipeline = _pipeline("pool")
        second = pipeline.run_streaming(
            dataset.corpus.raw_documents,
            tmp_path_factory.mktemp("pool-b"),
            gold=dataset.gold_entries,
        )
        _assert_streaming_identical(first, second)


@fork_only
class TestInMemoryEquivalence:
    def test_pool_inmemory_matches_serial_bytes(self, serial_inmemory):
        dataset, pipeline = _pipeline("pool")
        result = pipeline.run_from_raw(
            dataset.corpus.raw_documents, gold=dataset.gold_entries
        )
        assert np.array_equal(result.marginals, serial_inmemory.marginals)
        assert result.extracted_entries == serial_inmemory.extracted_entries
        assert result.metrics == serial_inmemory.metrics
        assert result.n_candidates == serial_inmemory.n_candidates


class _SimulatedKill(RuntimeError):
    pass


@fork_only
class TestPoolKillResume:
    @pytest.mark.parametrize("kill_at", [2, 6, 11])
    def test_killed_pool_run_resumes_with_exact_counts(
        self, tmp_path, serial_streaming, kill_at
    ):
        dataset, pipeline = _pipeline("pool")
        boundaries = {"seen": 0}

        def killer(event):
            boundaries["seen"] += 1
            if boundaries["seen"] == kill_at:
                raise _SimulatedKill()

        with pytest.raises(_SimulatedKill):
            pipeline.run_streaming(
                dataset.corpus.raw_documents,
                tmp_path,
                gold=dataset.gold_entries,
                progress=killer,
            )

        dataset, pipeline = _pipeline("pool")
        resumed = pipeline.run_streaming(
            dataset.corpus.raw_documents, tmp_path, gold=dataset.gold_entries
        )
        # Every boundary checkpointed before the kill is skipped on resume —
        # the counts match the kill point exactly because events fire only
        # after their checkpoint is durable (pool mode included).
        assert resumed.n_resumed == kill_at
        _assert_streaming_identical(resumed, serial_streaming)

    def test_pool_killed_run_resumes_under_serial_executor(
        self, tmp_path, serial_streaming
    ):
        """Checkpoints are executor-agnostic: kill under pool, resume serial."""
        dataset, pipeline = _pipeline("pool")
        boundaries = {"seen": 0}

        def killer(event):
            boundaries["seen"] += 1
            if boundaries["seen"] == 5:
                raise _SimulatedKill()

        with pytest.raises(_SimulatedKill):
            pipeline.run_streaming(
                dataset.corpus.raw_documents,
                tmp_path,
                gold=dataset.gold_entries,
                progress=killer,
            )

        dataset, pipeline = _pipeline("serial")
        resumed = pipeline.run_streaming(
            dataset.corpus.raw_documents, tmp_path, gold=dataset.gold_entries
        )
        assert resumed.n_resumed == 5
        _assert_streaming_identical(resumed, serial_streaming)

    def test_serial_killed_run_resumes_under_pool(
        self, tmp_path, serial_streaming
    ):
        dataset, pipeline = _pipeline("serial")
        boundaries = {"seen": 0}

        def killer(event):
            boundaries["seen"] += 1
            if boundaries["seen"] == 7:
                raise _SimulatedKill()

        with pytest.raises(_SimulatedKill):
            pipeline.run_streaming(
                dataset.corpus.raw_documents,
                tmp_path,
                gold=dataset.gold_entries,
                progress=killer,
            )

        dataset, pipeline = _pipeline("pool")
        resumed = pipeline.run_streaming(
            dataset.corpus.raw_documents, tmp_path, gold=dataset.gold_entries
        )
        assert resumed.n_resumed == 7
        _assert_streaming_identical(resumed, serial_streaming)
