"""Tests for data-model traversal helpers (row/column/header/aligned n-grams)."""

import pytest

from repro.data_model.context import Span
from repro.data_model.traversal import (
    aligned_ngrams,
    cell_ngrams,
    column_header_ngrams,
    column_ngrams,
    header_ngrams,
    is_horizontally_aligned,
    is_vertically_aligned,
    lowest_common_ancestor,
    lowest_common_ancestor_depth,
    manhattan_distance,
    page_ngrams,
    row_header_ngrams,
    row_ngrams,
    same_cell,
    same_column,
    same_document,
    same_page,
    same_row,
    same_table,
    sentence_ngrams,
)


def find_span(document, text):
    """Locate the first span whose text matches ``text`` exactly."""
    target = text.split()
    for sentence in document.sentences():
        words = sentence.words
        for start in range(len(words) - len(target) + 1):
            if words[start : start + len(target)] == target:
                return Span(sentence, start, start + len(target))
    raise AssertionError(f"Span {text!r} not found")


@pytest.fixture(scope="module")
def spans(datasheet_document):
    document = datasheet_document
    return {
        "part": find_span(document, "SMBT3904"),
        "current": find_span(document, "200"),
        "ic": find_span(document, "IC"),
        "vceo_value": find_span(document, "40"),
        "unit_ma": find_span(document, "mA"),
        "header_value": find_span(document, "Value"),
    }


class TestNgramHelpers:
    def test_sentence_ngrams_contain_own_words(self, spans):
        grams = sentence_ngrams(spans["part"])
        assert "smbt3904" in grams

    def test_row_ngrams_for_current_value(self, spans):
        grams = row_ngrams(spans["current"])
        assert "collector" in grams
        assert "current" in grams
        assert "ic" in grams

    def test_row_ngrams_empty_for_non_tabular(self, spans):
        assert row_ngrams(spans["part"]) == []

    def test_column_ngrams_share_column_values(self, spans):
        grams = column_ngrams(spans["current"])
        assert "40" in grams  # VCEO value shares the Value column

    def test_column_header_ngrams(self, spans):
        grams = column_header_ngrams(spans["current"])
        assert "value" in grams

    def test_row_header_ngrams(self, spans):
        grams = row_header_ngrams(spans["current"])
        assert "collector" in grams

    def test_header_ngrams_union(self, spans):
        grams = header_ngrams(spans["current"])
        assert "value" in grams and "collector" in grams

    def test_cell_ngrams_excludes_span_words(self, spans):
        grams = cell_ngrams(spans["ic"])
        assert "ic" not in grams

    def test_header_ngrams_empty_for_header_cell(self, spans):
        # The header cell's own column header is itself; traversal must not
        # return the span's own cell content as header evidence.
        grams = column_header_ngrams(spans["header_value"])
        assert grams == []

    def test_page_ngrams_nonempty_with_layout(self, spans):
        grams = page_ngrams(spans["current"])
        assert "transistors" in grams or "maximum" in grams

    def test_aligned_ngrams_include_row_neighbors(self, spans):
        grams = aligned_ngrams(spans["current"], axis="horizontal", tolerance=8.0)
        assert "ic" in grams

    def test_aligned_ngrams_vertical_includes_column(self, spans):
        grams = aligned_ngrams(spans["current"], axis="vertical", tolerance=30.0)
        assert "40" in grams or "value" in grams


class TestPredicates:
    def test_same_document(self, spans):
        assert same_document(spans["part"], spans["current"])

    def test_same_table_and_row(self, spans):
        assert same_table(spans["current"], spans["ic"])
        assert same_row(spans["current"], spans["ic"])
        assert not same_row(spans["current"], spans["vceo_value"])

    def test_same_column(self, spans):
        assert same_column(spans["current"], spans["vceo_value"])
        assert not same_column(spans["current"], spans["ic"])

    def test_same_cell(self, spans):
        assert not same_cell(spans["current"], spans["ic"])
        assert same_cell(spans["current"], spans["current"])

    def test_same_page(self, spans):
        assert same_page(spans["part"], spans["current"])

    def test_horizontal_alignment_within_row(self, spans):
        assert is_horizontally_aligned(spans["current"], spans["ic"], tolerance=8.0)

    def test_vertical_alignment_within_column(self, spans):
        assert is_vertically_aligned(spans["current"], spans["vceo_value"], tolerance=60.0)

    def test_no_alignment_for_missing_boxes(self, datasheet_document, spans):
        # Strip boxes from a copy of a sentence to simulate conversion errors.
        sentence = spans["part"].sentence
        saved = list(sentence.word_boxes)
        sentence.set_word_boxes([None] * len(sentence.words))
        try:
            assert not is_horizontally_aligned(spans["part"], spans["current"])
        finally:
            sentence.set_word_boxes(saved)

    def test_lowest_common_ancestor_same_table(self, spans):
        lca = lowest_common_ancestor(spans["current"], spans["ic"])
        assert type(lca).__name__ == "Table"

    def test_lowest_common_ancestor_cross_context(self, spans):
        lca = lowest_common_ancestor(spans["part"], spans["current"])
        assert type(lca).__name__ in ("Section", "Document")

    def test_lca_depth_smaller_within_table(self, spans):
        within = lowest_common_ancestor_depth(spans["current"], spans["ic"])
        across = lowest_common_ancestor_depth(spans["part"], spans["current"])
        assert within <= across

    def test_manhattan_distance(self, spans):
        assert manhattan_distance(spans["current"], spans["ic"]) == 1
        assert manhattan_distance(spans["part"], spans["current"]) is None


class TestIndexedTraversalEquivalence:
    """Every n-gram helper must return byte-identical results on the indexed
    fast path and the legacy object-walking path."""

    HELPERS = [
        sentence_ngrams,
        cell_ngrams,
        row_ngrams,
        column_ngrams,
        row_header_ngrams,
        column_header_ngrams,
        header_ngrams,
        page_ngrams,
        aligned_ngrams,
    ]

    def _spans(self, document, limit=60):
        from repro.candidates.ngrams import MentionNgrams

        return list(MentionNgrams(n_max=2).iter_spans(document))[:limit]

    @pytest.mark.parametrize("helper", HELPERS, ids=lambda h: h.__name__)
    @pytest.mark.parametrize("n_max", [1, 2])
    @pytest.mark.parametrize("lower", [True, False])
    def test_helper_identical_across_paths(self, datasheet_document, helper, n_max, lower):
        from repro.data_model.index import build_index, traversal_mode

        build_index(datasheet_document)
        for span in self._spans(datasheet_document):
            with traversal_mode(True):
                fast = helper(span, n_max=n_max, lower=lower)
            with traversal_mode(False):
                legacy = helper(span, n_max=n_max, lower=lower)
            assert fast == legacy, f"{helper.__name__} diverged for {span!r}"

    @pytest.mark.parametrize("axis", ["horizontal", "vertical", "both"])
    def test_aligned_ngrams_axes_identical(self, datasheet_document, axis):
        from repro.data_model.index import build_index, traversal_mode

        build_index(datasheet_document)
        for span in self._spans(datasheet_document, limit=40):
            with traversal_mode(True):
                fast = aligned_ngrams(span, axis=axis, tolerance=6.0)
            with traversal_mode(False):
                legacy = aligned_ngrams(span, axis=axis, tolerance=6.0)
            assert fast == legacy

    def test_neighbor_ngrams_identical(self, datasheet_document):
        from repro.data_model.index import build_index, traversal_mode
        from repro.data_model.traversal import neighbor_sentence_ngrams

        build_index(datasheet_document)
        for span in self._spans(datasheet_document, limit=40):
            with traversal_mode(True):
                fast = neighbor_sentence_ngrams(span, window=2, n_max=2)
            with traversal_mode(False):
                legacy = neighbor_sentence_ngrams(span, window=2, n_max=2)
            assert fast == legacy

    def test_predicates_identical(self, datasheet_document):
        from repro.data_model.index import build_index, traversal_mode

        build_index(datasheet_document)
        spans = self._spans(datasheet_document, limit=15)
        predicates = [same_cell, same_table, same_row, same_column, same_page]
        for a in spans:
            for b in spans:
                for predicate in predicates:
                    with traversal_mode(True):
                        fast = predicate(a, b)
                    with traversal_mode(False):
                        legacy = predicate(a, b)
                    assert fast == legacy, predicate.__name__

    def test_memoized_results_are_fresh_copies(self, datasheet_document):
        """Callers may mutate returned lists without corrupting the memo."""
        from repro.data_model.index import build_index

        build_index(datasheet_document)
        span = next(
            s for s in self._spans(datasheet_document, limit=200) if s.is_tabular
        )
        first = row_ngrams(span)
        if first:
            first.append("corrupted")
            assert row_ngrams(span)[-1] != "corrupted"


class TestNestedTableEquivalence:
    """The nearest Cell and nearest Table ancestors of a sentence can belong
    to *different* tables (a table nested inside an outer cell); membership
    must resolve through the nearest Table, exactly like the legacy walk."""

    @pytest.fixture()
    def nested_span(self):
        from repro.data_model.context import (
            Caption,
            Cell,
            Document,
            Paragraph,
            Section,
            Sentence,
            Table,
        )

        document = Document("nested")
        section = Section(document)
        outer = Table(section, name="outer")
        outer_cell = Cell(outer, row_start=0, col_start=0)
        Sentence(Paragraph(Cell(outer, row_start=0, col_start=1)),
                 words=["outer", "row", "words"], position=0)
        inner = Table(outer_cell, name="inner")
        Sentence(Paragraph(Cell(inner, row_start=0, col_start=0, is_header=True)),
                 words=["inner", "header"], position=0)
        caption = Caption(inner)
        sentence = Sentence(Paragraph(caption), words=["the", "caption"], position=0)
        # Nearest Cell = outer_cell (outer table), nearest Table = inner.
        return Span(sentence, 0, 2)

    @pytest.mark.parametrize(
        "helper",
        [row_ngrams, column_ngrams, row_header_ngrams, column_header_ngrams],
        ids=lambda h: h.__name__,
    )
    def test_nested_helpers_identical_across_paths(self, nested_span, helper):
        from repro.data_model.index import build_index, traversal_mode

        build_index(nested_span.document)
        with traversal_mode(True):
            fast = helper(nested_span)
        with traversal_mode(False):
            legacy = helper(nested_span)
        assert fast == legacy

    def test_nested_header_locators_identical(self, nested_span):
        from repro.data_model.index import build_index, traversal_mode
        from repro.data_model.traversal import get_column_header, get_row_header

        build_index(nested_span.document)
        for locator in (get_row_header, get_column_header):
            with traversal_mode(True):
                fast = locator(nested_span)
            with traversal_mode(False):
                legacy = locator(nested_span)
            assert fast is legacy


class TestNoCommonAncestor:
    """Spans from different documents share no ancestor; the interval fast
    path must preserve the legacy ``None`` / sentinel-99 answers (it falls
    back to the pointer walk, because pre ranks are per-document)."""

    @pytest.fixture()
    def cross_document_spans(self):
        from repro.data_model.context import Document, Paragraph, Sentence

        spans = []
        for name in ("doc_a", "doc_b"):
            document = Document(name)
            sentence = Sentence(
                Paragraph(document), words=["lonely", "words"], position=0
            )
            spans.append(Span(sentence, 0, 2))
        return spans

    @pytest.mark.parametrize("use_index", [True, False])
    def test_lca_is_none_across_documents(self, cross_document_spans, use_index):
        from repro.data_model.index import build_index, traversal_mode

        a, b = cross_document_spans
        build_index(a.sentence.document)
        build_index(b.sentence.document)
        with traversal_mode(use_index):
            assert lowest_common_ancestor(a, b) is None
            assert lowest_common_ancestor_depth(a, b) == 99

    @pytest.mark.parametrize("use_index", [True, False])
    def test_detached_sentence_falls_back_to_pointer_walk(self, use_index):
        from repro.data_model.context import Document, Paragraph, Sentence
        from repro.data_model.index import build_index, traversal_mode

        document = Document("detached_host")
        attached = Span(
            Sentence(Paragraph(document), words=["still", "here"], position=0), 0, 2
        )
        orphan_sentence = Sentence(
            Paragraph(Document("discarded")), words=["orphan"], position=0
        )
        orphan_sentence.parent.children.remove(orphan_sentence)
        orphan_sentence.parent = None
        orphan = Span(orphan_sentence, 0, 1)
        build_index(document)
        with traversal_mode(use_index):
            assert lowest_common_ancestor(attached, orphan) is None
            assert lowest_common_ancestor_depth(attached, orphan) == 99
