"""Tests for the parsing substrate: HTML/XML parsers, layout engine, alignment, corpus."""

import pytest
from hypothesis import given, strategies as st
from repro.parsing.alignment import align_word_sequences, transfer_attributes
from repro.parsing.corpus import RawDocument
from repro.parsing.html_parser import HtmlDocParser
from repro.parsing.pdf_layout import LayoutConfig, LayoutEngine
from repro.parsing.xml_parser import XmlDocParser


SIMPLE_HTML = """
<section id="s1">
  <h1 style="font-weight:bold">Widget 9000 overview</h1>
  <p>The widget is small. It is light.</p>
  <table id="t1">
    <caption>Widget properties</caption>
    <tr><th>Property</th><th>Value</th></tr>
    <tr><td>Mass</td><td>12</td></tr>
    <tr><td colspan="2">Discontinued</td></tr>
  </table>
  <figure src="widget.png"><figcaption>A widget</figcaption></figure>
</section>
"""

SIMPLE_XML = """
<article>
  <sec id="intro">
    <title>Study of widgets</title>
    <p>Widgets were studied in depth.</p>
    <table-wrap id="t1">
      <caption>Widget table</caption>
      <table>
        <tr><th>Name</th><th>Score</th></tr>
        <tr><td>alpha</td><td>5</td></tr>
      </table>
    </table-wrap>
  </sec>
</article>
"""


class TestHtmlParser:
    @pytest.fixture(scope="class")
    def document(self):
        return HtmlDocParser().parse("simple", SIMPLE_HTML)

    def test_section_structure(self, document):
        assert len(document.sections) == 1
        assert document.sections[0].name == "s1"

    def test_text_blocks(self, document):
        texts = document.texts()
        assert len(texts) >= 2  # heading + paragraph

    def test_sentence_splitting_in_paragraph(self, document):
        paragraph_text = [t for t in document.texts() if "small" in t.text()][0]
        assert len(list(paragraph_text.sentences())) == 2

    def test_table_grid(self, document):
        table = document.tables()[0]
        assert table.n_rows == 3
        assert table.n_columns == 2

    def test_header_cells(self, document):
        table = document.tables()[0]
        headers = [c for c in table.cells if c.is_header]
        assert len(headers) == 2

    def test_colspan(self, document):
        table = document.tables()[0]
        spanning = [c for c in table.cells if c.col_span == 2]
        assert len(spanning) == 1
        assert "Discontinued" in spanning[0].text()

    def test_caption(self, document):
        table = document.tables()[0]
        assert table.caption is not None
        assert "properties" in table.caption.text().lower()

    def test_figure_and_figcaption(self, document):
        figures = document.figures()
        assert len(figures) == 1
        assert figures[0].caption is not None

    def test_html_attributes_preserved(self, document):
        heading = [t for t in document.texts() if "overview" in t.text()][0]
        sentence = next(iter(heading.sentences()))
        assert sentence.html_tag == "h1"
        assert "font-weight:bold" in sentence.html_attrs.get("style", "")

    def test_rowspan_occupancy(self):
        html = (
            "<table>"
            "<tr><td rowspan='2'>A</td><td>B</td></tr>"
            "<tr><td>C</td></tr>"
            "</table>"
        )
        document = HtmlDocParser().parse("rowspan", html)
        table = document.tables()[0]
        spanning = table.cell_at(1, 0)
        assert spanning is table.cell_at(0, 0)
        assert "C" in table.cell_at(1, 1).text()

    def test_implicit_section_wrapping(self):
        document = HtmlDocParser().parse("bare", "<p>Loose text only.</p>")
        assert len(document.sections) == 1
        assert "Loose text" in document.text()

    def test_malformed_html_tolerated(self):
        document = HtmlDocParser().parse("broken", "<p>Unclosed paragraph <b>bold")
        assert "Unclosed paragraph" in document.text()


class TestXmlParser:
    @pytest.fixture(scope="class")
    def document(self):
        return XmlDocParser().parse("xmlsimple", SIMPLE_XML)

    def test_sections(self, document):
        assert len(document.sections) == 1

    def test_title_becomes_text(self, document):
        assert any("Study of widgets" in t.text() for t in document.texts())

    def test_table_with_caption(self, document):
        table = document.tables()[0]
        assert table.caption is not None
        assert table.n_rows == 2
        assert table.n_columns == 2

    def test_cell_contents(self, document):
        table = document.tables()[0]
        assert "alpha" in table.cell_at(1, 0).text()

    def test_no_visual_information(self, document):
        for sentence in document.sentences():
            assert all(box is None for box in sentence.word_boxes)

    def test_invalid_xml_raises(self):
        with pytest.raises(Exception):
            XmlDocParser().parse("bad", "<article><unclosed></article>")


class TestLayoutEngine:
    @pytest.fixture(scope="class")
    def rendered(self):
        document = HtmlDocParser().parse("layout", SIMPLE_HTML)
        pages = LayoutEngine().render(document)
        return document, pages

    def test_every_word_gets_a_box(self, rendered):
        document, _ = rendered
        for sentence in document.sentences():
            assert all(box is not None for box in sentence.word_boxes)

    def test_boxes_within_page_bounds(self, rendered):
        document, _ = rendered
        config = LayoutConfig()
        for sentence in document.sentences():
            for box in sentence.word_boxes:
                assert 0 <= box.x0 <= box.x1 <= config.page_width
                assert 0 <= box.y0 <= box.y1 <= config.page_height

    def test_table_row_words_y_aligned(self, rendered):
        document, _ = rendered
        table = document.tables()[0]
        mass_cell = [c for c in table.cells if "Mass" in c.text()][0]
        value_cell = table.cell_at(mass_cell.row_start, 1)
        mass_box = next(iter(mass_cell.sentences())).word_boxes[0]
        value_box = next(iter(value_cell.sentences())).word_boxes[0]
        assert mass_box.is_horizontally_aligned(value_box, tolerance=6.0)

    def test_table_column_words_x_aligned(self, rendered):
        document, _ = rendered
        table = document.tables()[0]
        header = table.cell_at(0, 1)
        value = table.cell_at(1, 1)
        header_box = next(iter(header.sentences())).word_boxes[0]
        value_box = next(iter(value.sentences())).word_boxes[0]
        assert abs(header_box.x0 - value_box.x0) < 4.0

    def test_long_document_spans_pages(self):
        rows = "".join(f"<tr><td>item {i}</td><td>{i}</td></tr>" for i in range(200))
        html = f"<section><table><tr><th>Name</th><th>Value</th></tr>{rows}</table></section>"
        document = HtmlDocParser().parse("long", html)
        pages = LayoutEngine().render(document)
        assert len(pages) > 1
        assert document.n_pages() > 1

    def test_pages_record_word_boxes(self, rendered):
        _, pages = rendered
        assert pages[0].n_words > 0


class TestAlignment:
    def test_perfect_alignment(self):
        words = ["a", "b", "c", "a"]
        result = align_word_sequences(words, words)
        assert result.mapping == [0, 1, 2, 3]
        assert result.alignment_rate == 1.0

    def test_repeated_words_use_occurrence_counts(self):
        original = ["200", "mA", "200"]
        converted = ["200", "mA", "200"]
        result = align_word_sequences(original, converted)
        assert result.mapping == [0, 1, 2]

    def test_dropped_word(self):
        result = align_word_sequences(["a", "b", "c"], ["a", "c"])
        assert result.mapping[0] == 0
        assert result.mapping[1] is None
        assert result.mapping[2] == 1
        assert result.n_unaligned == 1

    def test_case_change_recovered(self):
        result = align_word_sequences(["Value"], ["value"])
        assert result.mapping == [0]

    def test_transfer_attributes(self):
        alignment = align_word_sequences(["a", "b"], ["b", "a"])
        attributes = ["box_for_b", "box_for_a"]
        transferred = transfer_attributes(alignment, attributes)
        assert transferred == ["box_for_a", "box_for_b"]

    def test_transfer_handles_unaligned(self):
        alignment = align_word_sequences(["a", "x"], ["a"])
        assert transfer_attributes(alignment, ["attr_a"]) == ["attr_a", None]

    @given(st.lists(st.sampled_from(["a", "b", "c", "200", "mA"]), max_size=30))
    def test_identity_alignment_is_total(self, words):
        result = align_word_sequences(words, words)
        assert result.n_unaligned == 0
        assert result.mapping == list(range(len(words)))

    @given(st.lists(st.sampled_from(["a", "b", "c"]), max_size=20), st.integers(0, 5))
    def test_alignment_is_injective(self, words, drop):
        converted = words[drop:]
        result = align_word_sequences(words, converted)
        used = [m for m in result.mapping if m is not None]
        assert len(used) == len(set(used))


class TestCorpusParser:
    def test_pdf_document_gets_visual(self, corpus_parser, simple_raw_document):
        document = corpus_parser.parse_document(simple_raw_document)
        assert any(
            box is not None for s in document.sentences() for box in s.word_boxes
        )

    def test_xml_document_skips_visual(self, corpus_parser):
        raw = RawDocument("x", SIMPLE_XML, format="xml")
        document = corpus_parser.parse_document(raw)
        assert all(
            box is None for s in document.sentences() for box in s.word_boxes
        )

    def test_metadata_attached(self, corpus_parser):
        raw = RawDocument("m", "<p>hello</p>", format="html", metadata={"domain": "test"})
        document = corpus_parser.parse_document(raw)
        assert document.attributes["domain"] == "test"
        assert document.format == "html"

    def test_unknown_format_rejected(self, corpus_parser):
        with pytest.raises(ValueError):
            corpus_parser.parse_document(RawDocument("bad", "", format="docx"))

    def test_parse_preserves_order_and_iter_parse_lazy(self, corpus_parser):
        raws = [RawDocument(f"d{i}", f"<p>doc {i}</p>", format="html") for i in range(3)]
        documents = corpus_parser.parse(raws)
        assert [d.name for d in documents] == ["d0", "d1", "d2"]
        iterator = corpus_parser.iter_parse(raws)
        assert next(iterator).name == "d0"
