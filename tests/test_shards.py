"""Unit tests of the out-of-core shard store (`repro.storage.shards`)."""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.candidates.extractor import CandidateExtractor, ExtractionResult
from repro.data_model.context import Context
from repro.engine.fingerprint import combine_keys
from repro.features.cache import MentionFeatureCache
from repro.parsing.corpus import CorpusParser, RawDocument
from repro.storage.shards import (
    FeatureSlab,
    ShardStore,
    concat_feature_slabs,
    concat_label_slabs,
    partition_corpus,
    shard_content_id,
)
from repro.storage.sparse import CSRMatrix


def make_raws(n, prefix="doc"):
    return [
        RawDocument(
            name=f"{prefix}_{i}",
            content=f"<section><p>The part BC{1000 + i} has a rating of {100 + i} mA.</p></section>",
            format="html",
            path=f"docs/{prefix}_{i}.html",
        )
        for i in range(n)
    ]


class TestPartitioning:
    def test_positional_chunks(self):
        raws = make_raws(7)
        shards = partition_corpus(raws, 3)
        assert [len(s) for s in shards] == [3, 3, 1]
        assert shards[0][0] is raws[0]
        assert shards[2][0] is raws[6]

    def test_shard_size_must_be_positive(self):
        with pytest.raises(ValueError):
            partition_corpus(make_raws(2), 0)

    def test_content_addressing_is_deterministic(self):
        raws = make_raws(3)
        assert shard_content_id(raws) == shard_content_id(make_raws(3))

    def test_editing_one_document_changes_exactly_one_shard_id(self):
        raws = make_raws(6)
        before = [shard_content_id(s) for s in partition_corpus(raws, 2)]
        raws[3].content += "<p>edited</p>"
        after = [shard_content_id(s) for s in partition_corpus(raws, 2)]
        assert before[0] == after[0]
        assert before[1] != after[1]
        assert before[2] == after[2]


class TestManifest:
    def test_open_corpus_persists_manifest(self, tmp_path):
        store = ShardStore(tmp_path / "work")
        shards = store.open_corpus(make_raws(5), shard_size=2)
        assert len(shards) == 3
        payload = json.loads((tmp_path / "work" / "manifest.json").read_text())
        assert payload["n_shards"] == 3
        assert [s["shard_id"] for s in payload["shards"]] == [
            s.shard_id for s in shards
        ]

    def test_reopen_keeps_stage_records_for_unchanged_shards(self, tmp_path):
        store = ShardStore(tmp_path / "work")
        shards = store.open_corpus(make_raws(4), shard_size=2)
        store.mark_stage(shards[0], "parse", "key-a")
        store.mark_stage(shards[1], "parse", "key-b")

        reopened = ShardStore(tmp_path / "work")
        raws = make_raws(4)
        raws[2].content += "<p>edited</p>"
        new_shards = reopened.open_corpus(raws, shard_size=2)
        assert reopened.stage_complete(new_shards[0], "parse", "key-a") is False
        # record survives, but only under matching key + existing artifact
        assert new_shards[0].stages["parse"]["key"] == "key-a"
        # the edited shard starts over
        assert new_shards[1].stages == {}

    def test_stage_complete_requires_artifacts_on_disk(self, tmp_path):
        store = ShardStore(tmp_path / "work")
        shards = store.open_corpus(make_raws(2), shard_size=2)
        store.mark_stage(shards[0], "parse", "key")
        # marked complete but docs.pkl never written (crash before slab write)
        assert store.stage_complete(shards[0], "parse", "key") is False
        store.write_docs(shards[0], [])
        assert store.stage_complete(shards[0], "parse", "key") is True
        assert store.stage_complete(shards[0], "parse", "other-key") is False

    def test_corpus_shrink_drops_trailing_shards(self, tmp_path):
        store = ShardStore(tmp_path / "work")
        shards = store.open_corpus(make_raws(6), shard_size=2)
        store.write_docs(shards[2], [])
        assert (store.shards_dir / shards[2].dirname / "docs.pkl").exists()
        store.open_corpus(make_raws(4), shard_size=2)
        assert not (store.shards_dir / shards[2].dirname).exists()


class TestResidencyLRU:
    def test_at_most_max_resident_shards_in_memory(self, tmp_path):
        store = ShardStore(tmp_path / "work", max_resident_shards=2)
        shards = store.open_corpus(make_raws(10), shard_size=2)
        for shard in shards:
            store.write_docs(shard, [f"docs-of-{shard.shard_id}"])
        assert store.n_resident == 2
        assert store.evictions == 3

    def test_eviction_falls_back_to_slab(self, tmp_path):
        store = ShardStore(tmp_path / "work", max_resident_shards=1)
        shards = store.open_corpus(make_raws(4), shard_size=2)
        store.write_docs(shards[0], ["a"])
        store.write_docs(shards[1], ["b"])  # evicts shard 0
        assert store.n_resident == 1
        assert store.load_docs(shards[0]) == ["a"]  # re-read from docs.pkl

    def test_evict_all(self, tmp_path):
        store = ShardStore(tmp_path / "work", max_resident_shards=4)
        shards = store.open_corpus(make_raws(4), shard_size=2)
        for shard in shards:
            store.write_docs(shard, [])
        store.evict_all()
        assert store.n_resident == 0


class TestSlabs:
    def test_docs_round_trip(self, tmp_path):
        store = ShardStore(tmp_path / "work")
        shards = store.open_corpus(make_raws(2), shard_size=2)
        parser = CorpusParser()
        docs = [parser.parse_document(raw) for raw in shards[0].raws]
        store.write_docs(shards[0], docs)
        store.evict_all()
        loaded = store.load_docs(shards[0])
        assert [d.name for d in loaded] == [d.name for d in docs]
        assert [d.path for d in loaded] == [d.path for d in docs]
        assert [s.words for d in loaded for s in d.sentences()] == [
            s.words for d in docs for s in d.sentences()
        ]

    def test_candidates_round_trip_and_meta(self, tmp_path, electronics_dataset):
        dataset = electronics_dataset
        extractor = CandidateExtractor(
            dataset.schema.name,
            {t: dataset.matchers[t] for t in dataset.schema.entity_types},
            throttlers=dataset.throttlers,
        )
        parser = CorpusParser()
        docs = [parser.parse_document(r) for r in dataset.corpus.raw_documents[:2]]
        extractions = [extractor.extract_from_document(d) for d in docs]

        store = ShardStore(tmp_path / "work")
        shards = store.open_corpus(dataset.corpus.raw_documents[:2], shard_size=2)
        store.write_candidates(shards[0], extractions)
        store.evict_all()

        loaded = store.load_candidates(shards[0])
        flat = [c for e in loaded for c in e.candidates]
        original = [c for e in extractions for c in e.candidates]
        assert [c.entity_tuple for c in flat] == [c.entity_tuple for c in original]
        assert [
            tuple(s.stable_id for s in c.spans) for c in flat
        ] == [tuple(s.stable_id for s in c.spans) for c in original]

        meta = store.load_candidates_meta(shards[0])
        assert meta["entries"] == [
            (c.document.name, c.entity_tuple) for c in original
        ]
        merged = ExtractionResult.merge(extractions)
        assert meta["n_raw_candidates"] == merged.n_raw_candidates
        assert meta["n_throttled"] == merged.n_throttled

    def test_feature_slab_round_trip(self, tmp_path):
        store = ShardStore(tmp_path / "work")
        shards = store.open_corpus(make_raws(2), shard_size=2)
        rows = [[{"a": 1.0, "b": 2.0}, {"b": 1.0}], [{"c": 3.0}]]
        written = store.write_feature_slab(shards[0], rows)
        loaded = store.load_feature_slab(shards[0])
        assert np.array_equal(loaded.indptr, written.indptr)
        assert np.array_equal(loaded.indices, written.indices)
        assert np.array_equal(loaded.data, written.data)
        assert loaded.columns == ["a", "b", "c"]
        assert loaded.n_rows == 3

    def test_label_slab_round_trip(self, tmp_path):
        store = ShardStore(tmp_path / "work")
        shards = store.open_corpus(make_raws(2), shard_size=2)
        block = np.array([[1, -1, 0], [0, 0, 1]], dtype=np.int8)
        store.write_label_slab(shards[0], block)
        assert np.array_equal(store.load_label_slab(shards[0]), block)


class TestSlabConcatenation:
    def test_concat_matches_from_rows(self):
        # Column vocabulary interleaves across shards: "b" is new in shard 2,
        # "a" recurs — the global interning must follow first occurrence in
        # the corpus-order entry scan, exactly like CSRMatrix.from_rows.
        shard1 = [{"a": 1.0, "x": 2.0}, {}, {"x": 1.0}]
        shard2 = [{"b": 5.0, "a": 4.0}, {"y": 1.0, "b": 2.0}]
        reference = CSRMatrix.from_rows(shard1 + shard2)

        def slab_of(rows):
            from repro.storage.sparse import CSRBuilder

            builder = CSRBuilder()
            for position, row in enumerate(rows):
                builder.add_row(position, row.items())
            matrix = builder.build()
            return FeatureSlab(
                indptr=matrix.indptr,
                indices=matrix.indices,
                data=matrix.data,
                columns=matrix.column_names,
            )

        combined = concat_feature_slabs([slab_of(shard1), slab_of(shard2)])
        assert np.array_equal(combined.indptr, reference.indptr)
        assert np.array_equal(combined.indices, reference.indices)
        assert np.array_equal(combined.data, reference.data)
        assert combined.column_names == reference.column_names
        assert combined.row_ids == reference.row_ids

    def test_concat_empty(self):
        combined = concat_feature_slabs([])
        assert combined.n_rows == 0
        assert combined.nnz() == 0
        assert concat_label_slabs([]).shape == (0, 0)

    def test_concat_label_blocks(self):
        a = np.array([[1, 0]], dtype=np.int8)
        b = np.zeros((0, 2), dtype=np.int8)
        c = np.array([[0, -1], [1, 1]], dtype=np.int8)
        combined = concat_label_slabs([a, b, c])
        assert np.array_equal(combined, np.vstack([a, c]))


class TestStableIdRegression:
    """Stable ids must stay corpus-unique after a shard round-trip.

    Context ids come from a process-local counter.  Two documents that share
    a *name* but live at different corpus paths used to collide: parsed in
    separate processes (or unpickled after a shard round-trip), their context
    ids overlap and the name-keyed stable id was the only disambiguator.
    The corpus-relative path now participates in the stable id.
    """

    HTML_A = "<section><p>Part BC1000 rated 100 mA.</p></section>"
    HTML_B = "<section><p>Part BC2000 rated 200 mA.</p></section>"

    def _parse_fresh(self, raw):
        """Parse with the id counter reset — models a fresh worker process."""
        counter = Context._id_counter
        Context._id_counter = iter(range(10_000_000, 20_000_000))
        try:
            return CorpusParser().parse_document(raw)
        finally:
            Context._id_counter = counter

    def test_same_name_documents_get_distinct_stable_ids(self):
        raw_a = RawDocument(
            name="datasheet", content=self.HTML_A, format="html",
            path="vendor_a/datasheet.html",
        )
        raw_b = RawDocument(
            name="datasheet", content=self.HTML_B, format="html",
            path="vendor_b/datasheet.html",
        )
        doc_a = self._parse_fresh(raw_a)
        doc_b = self._parse_fresh(raw_b)
        # Same names, same (overlapping) context ids — the collision setup.
        sentence_a = next(iter(doc_a.sentences()))
        sentence_b = next(iter(doc_b.sentences()))
        assert doc_a.name == doc_b.name
        assert sentence_a.id == sentence_b.id
        assert sentence_a.stable_id != sentence_b.stable_id
        assert "vendor_a" in sentence_a.stable_id
        assert "vendor_b" in sentence_b.stable_id

    def test_distinct_after_pickle_round_trip(self):
        raw_a = RawDocument(
            name="datasheet", content=self.HTML_A, format="html",
            path="vendor_a/datasheet.html",
        )
        raw_b = RawDocument(
            name="datasheet", content=self.HTML_B, format="html",
            path="vendor_b/datasheet.html",
        )
        doc_a = pickle.loads(pickle.dumps(self._parse_fresh(raw_a)))
        doc_b = pickle.loads(pickle.dumps(self._parse_fresh(raw_b)))
        ids_a = {c.stable_id for c in doc_a.descendants()}
        ids_b = {c.stable_id for c in doc_b.descendants()}
        assert not ids_a & ids_b

    def test_mention_feature_cache_distinguishes_same_name_documents(self):
        from repro.candidates.mentions import Mention
        from repro.candidates.ngrams import MentionNgrams

        raw_a = RawDocument(
            name="datasheet", content=self.HTML_A, format="html",
            path="vendor_a/datasheet.html",
        )
        raw_b = RawDocument(
            name="datasheet", content=self.HTML_A, format="html",
            path="vendor_b/datasheet.html",
        )
        doc_a = self._parse_fresh(raw_a)
        doc_b = self._parse_fresh(raw_b)
        span_a = next(MentionNgrams(1, 1).iter_spans(doc_a))
        span_b = next(MentionNgrams(1, 1).iter_spans(doc_b))
        mention_a = Mention("part", span_a)
        mention_b = Mention("part", span_b)
        assert mention_a.stable_id != mention_b.stable_id

        cache = MentionFeatureCache()
        cache.get_or_compute(mention_a, "f", lambda m: ["features-of-a"])
        result = cache.get_or_compute(mention_b, "f", lambda m: ["features-of-b"])
        assert result == ["features-of-b"]
        assert cache.hits == 0 and cache.misses == 2

    def test_documents_without_paths_keep_name_based_ids(self):
        parser = CorpusParser()
        document = parser.parse_document(
            RawDocument(name="plain", content=self.HTML_A, format="html")
        )
        sentence = next(iter(document.sentences()))
        assert sentence.stable_id.startswith("plain::")

    def test_engine_cache_keys_differ_for_same_name_documents(self):
        from repro.engine.fingerprint import document_fingerprint

        raw_a = RawDocument(
            name="datasheet", content=self.HTML_A, format="html",
            path="vendor_a/datasheet.html",
        )
        raw_b = RawDocument(
            name="datasheet", content=self.HTML_A, format="html",
            path="vendor_b/datasheet.html",
        )
        doc_a = self._parse_fresh(raw_a)
        doc_b = self._parse_fresh(raw_b)
        # Identical content, identical name — but stage outputs embed stable
        # ids, so the cache must not share rows between the two documents.
        assert document_fingerprint(doc_a) != document_fingerprint(doc_b)

    def test_shard_ids_differ_for_same_name_documents(self):
        raw_a = RawDocument(
            name="datasheet", content=self.HTML_A, format="html",
            path="vendor_a/datasheet.html",
        )
        raw_b = RawDocument(
            name="datasheet", content=self.HTML_A, format="html",
            path="vendor_b/datasheet.html",
        )
        assert shard_content_id([raw_a]) != shard_content_id([raw_b])


class TestStageKeyRecording:
    def test_incremental_cache_records_per_shard_keys(self):
        from repro.engine.cache import IncrementalCache

        cache = IncrementalCache()
        cache.record_stage_key("parse", "shard-1", "key-a")
        cache.record_stage_key("parse", "shard-2", "key-b")
        cache.record_stage_key("parse", "shard-1", "key-c")  # re-keyed
        assert cache.stage_key("parse", "shard-1") == "key-c"
        assert cache.stage_key("parse", "shard-3") is None
        assert cache.stage_shards("parse") == {"shard-1": "key-c", "shard-2": "key-b"}
        cache.clear()
        assert cache.stage_shards("parse") == {}

    def test_chained_keys_propagate_downstream(self):
        base = combine_keys("shard-id", "parse-fp")
        downstream_a = combine_keys(base, "candidates-fp")
        downstream_b = combine_keys(combine_keys("shard-id2", "parse-fp"), "candidates-fp")
        assert downstream_a != downstream_b


class TestVerifyOnRead:
    """Read-side integrity: detection, quarantine, in-place repair, sampling."""

    STAGE_KEYS = {
        "parse": "key-parse",
        "featurize": "key-feat",
        "label": "key-label",
        "marginals": "key-marg",
    }

    def build_store(self, tmp_path, **store_kwargs):
        store_kwargs.setdefault("integrity", "always")
        store = ShardStore(tmp_path / "work", **store_kwargs)
        shards = store.open_corpus(make_raws(2), shard_size=2)
        shard = shards[0]
        parser = CorpusParser()
        store.write_docs(shard, [parser.parse_document(r) for r in shard.raws])
        store.write_feature_slab(shard, [[{"a": 1.0}], [{"b": 2.0}]])
        store.write_label_slab(shard, np.array([[1, -1]], dtype=np.int8))
        store.write_marginal_slab(shard, np.array([0.25, 0.75]))
        for stage, key in self.STAGE_KEYS.items():
            store.mark_stage(shard, stage, key)
        store.evict_all()
        return store, shard

    @staticmethod
    def flip_byte(path):
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x40
        path.write_bytes(bytes(data))

    LOADERS = [
        ("docs.pkl", "parse", "load_docs"),
        ("features.npz", "featurize", "load_feature_slab"),
        ("feature_columns.json", "featurize", "load_feature_slab"),
        ("labels.npy", "label", "load_label_slab"),
        ("marginals.npy", "marginals", "load_marginal_slab"),
    ]

    @pytest.mark.parametrize(
        "artifact,stage,loader", LOADERS, ids=[case[0] for case in LOADERS]
    )
    def test_bit_flip_is_detected_quarantined_and_record_dropped(
        self, tmp_path, artifact, stage, loader
    ):
        from repro.storage.integrity import CorruptArtifactError

        store, shard = self.build_store(tmp_path)
        target = store.shards_dir / shard.dirname / artifact
        self.flip_byte(target)
        with pytest.raises(CorruptArtifactError) as excinfo:
            getattr(store, loader)(shard)
        # Contained: the corrupt file moved into quarantine for post-mortems.
        assert not target.exists()
        assert excinfo.value.quarantined_to.exists()
        assert "checksum mismatch" in excinfo.value.reason
        # The stage record is dropped so the normal resume path recomputes.
        assert stage not in shard.stages
        report = store.integrity_report()
        assert report["n_corrupt"] >= 1
        assert any(e["artifact"] == artifact for e in report["events"])

    def test_repairer_heals_in_place_and_keeps_the_record(self, tmp_path):
        store, shard = self.build_store(tmp_path)
        block = np.array([[1, -1]], dtype=np.int8)
        repaired = []

        def repairer(target_shard, stage):
            repaired.append((target_shard.dirname, stage))
            store.write_label_slab(target_shard, block)

        store.set_repairer(repairer)
        self.flip_byte(store.shards_dir / shard.dirname / "labels.npy")
        assert np.array_equal(store.load_label_slab(shard), block)
        assert repaired == [(shard.dirname, "label")]
        # Healed in place: record intact, checksum refreshed, stage resumes.
        assert store.stage_complete(shard, "label", "key-label") is True
        report = store.integrity_report()
        assert report["n_repaired"] == 1
        assert any(e["reason"] == "repaired" for e in report["events"])

    def test_stage_complete_is_false_on_corruption_without_repairer(self, tmp_path):
        store, shard = self.build_store(tmp_path)
        self.flip_byte(store.shards_dir / shard.dirname / "features.npz")
        assert store.stage_complete(shard, "featurize", "key-feat") is False
        assert "featurize" not in shard.stages

    def test_unreadable_slab_heals_even_when_sampling_skipped_it(self, tmp_path):
        # Policy "off" never hashes — but a slab that cannot even be
        # deserialized still takes the quarantine/repair path on read.
        store, shard = self.build_store(tmp_path, integrity="off")
        target = store.shards_dir / shard.dirname / "labels.npy"
        block = np.array([[1, -1]], dtype=np.int8)
        store.set_repairer(lambda s, stage: store.write_label_slab(s, block))
        target.write_bytes(b"not an npy file")
        assert np.array_equal(store.load_label_slab(shard), block)
        assert store.integrity_report()["n_repaired"] == 1

    def test_sample_policy_hashes_every_nth_read(self, tmp_path):
        store, shard = self.build_store(
            tmp_path, integrity="sample", sample_every=3
        )
        for _ in range(6):
            store.evict_all()
            store.load_label_slab(shard)
        # Reads 1 and 4 were hashed (the sampler starts eligible).
        assert store.n_verified == 2

    def test_off_policy_never_hashes(self, tmp_path):
        store, shard = self.build_store(tmp_path, integrity="off")
        # Flip a data byte that numpy still parses: nothing notices.
        target = store.shards_dir / shard.dirname / "marginals.npy"
        data = bytearray(target.read_bytes())
        data[-1] ^= 0x40
        target.write_bytes(bytes(data))
        store.load_marginal_slab(shard)
        assert store.n_verified == 0
        assert store.integrity_report()["n_corrupt"] == 0

    def test_verify_artifacts_reports_then_repairs(self, tmp_path):
        store, shard = self.build_store(tmp_path)
        self.flip_byte(store.shards_dir / shard.dirname / "labels.npy")
        self.flip_byte(store.shards_dir / shard.dirname / "marginals.npy")

        # Read-only pass: corruption is reported, files stay where they are.
        report = store.verify_artifacts(repair=False)
        assert report["n_stages"] == 4
        assert report["n_ok"] == 2
        corrupt_stages = {entry["stage"] for entry in report["corrupt"]}
        assert corrupt_stages == {"label", "marginals"}
        assert (store.shards_dir / shard.dirname / "labels.npy").exists()

        # Repair pass with a repairer: both stages heal and re-verify.
        block = np.array([[1, -1]], dtype=np.int8)
        marginals = np.array([0.25, 0.75])

        def repairer(target_shard, stage):
            if stage == "label":
                store.write_label_slab(target_shard, block)
            else:
                store.write_marginal_slab(target_shard, marginals)

        store.set_repairer(repairer)
        report = store.verify_artifacts(repair=True)
        assert {entry["stage"] for entry in report["repaired"]} == {
            "label",
            "marginals",
        }
        assert not report["corrupt"]
        clean = store.verify_artifacts(repair=False)
        assert clean["n_ok"] == clean["n_stages"] == 4
