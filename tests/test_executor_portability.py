"""ProcessExecutor on spawn-only platforms: fail fast or degrade loudly.

The fork-based pool inherits work units through forked process memory; on a
platform without the ``fork`` start method (Windows) that design cannot run,
and the old behaviour — constructing fine, then silently running serial —
hid the misconfiguration.  Now direct construction fails fast with an
explanation, and the config-driven factory degrades to threads with a
warning (results are identical across executors).
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.engine import executors
from repro.engine.executors import (
    PoolExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    create_executor,
)


def _spawn_only(monkeypatch):
    monkeypatch.setattr(
        multiprocessing, "get_all_start_methods", lambda: ["spawn"]
    )


class TestSpawnOnlyPlatform:
    def test_direct_construction_fails_fast_with_clear_message(self, monkeypatch):
        _spawn_only(monkeypatch)
        assert not ProcessExecutor.is_supported()
        with pytest.raises(RuntimeError, match="'fork' start method"):
            ProcessExecutor(n_workers=2)

    def test_create_executor_falls_back_to_threads_with_warning(self, monkeypatch):
        _spawn_only(monkeypatch)
        with pytest.warns(RuntimeWarning, match="falling back to executor='thread'"):
            executor = create_executor("process", n_workers=3)
        assert isinstance(executor, ThreadExecutor)
        assert executor.n_workers == 3
        # The fallback still produces the same (order-preserving) results.
        items = list(range(7))
        assert executor.map(lambda x: x * x, items) == [x * x for x in items]

    def test_pool_also_falls_back_to_threads_with_warning(self, monkeypatch):
        _spawn_only(monkeypatch)
        with pytest.warns(RuntimeWarning, match="falling back to executor='thread'"):
            executor = create_executor("pool", n_workers=2)
        assert isinstance(executor, ThreadExecutor)
        # A thread executor never reaches the pooled streaming path (the
        # pipeline branches on ProcessExecutor), so the whole run degrades
        # to the in-order loop — identical results, lower throughput.
        assert not isinstance(executor, ProcessExecutor)

    def test_pool_direct_construction_fails_fast(self, monkeypatch):
        _spawn_only(monkeypatch)
        with pytest.raises(RuntimeError, match="'fork' start method"):
            PoolExecutor(n_workers=2)

    def test_pipeline_config_path_survives_spawn_only(self, monkeypatch):
        """FonduerConfig(executor='process') must not crash at pipeline build."""
        _spawn_only(monkeypatch)
        from repro.engine.executors import create_executor as factory

        with pytest.warns(RuntimeWarning):
            executor = factory("process", n_workers=2, chunk_size=None)
        assert executor.map(str, [1, 2]) == ["1", "2"]


class TestForkPlatform:
    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="host platform is spawn-only",
    )
    def test_fork_platform_still_builds_process_executor(self):
        executor = create_executor("process", n_workers=2)
        assert isinstance(executor, ProcessExecutor)
        assert executor.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="host platform is spawn-only",
    )
    def test_fork_platform_builds_pool_executor(self):
        executor = create_executor("pool", n_workers=2)
        assert isinstance(executor, PoolExecutor)

    def test_serial_and_thread_unaffected_by_start_methods(self, monkeypatch):
        _spawn_only(monkeypatch)
        assert isinstance(create_executor("serial"), SerialExecutor)
        assert isinstance(create_executor("thread"), ThreadExecutor)

    def test_unknown_executor_still_rejected(self):
        with pytest.raises(ValueError, match="Unknown executor"):
            executors.create_executor("gpu")
