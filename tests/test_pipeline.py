"""Tests for the end-to-end pipeline, its configuration and development mode."""

import numpy as np
import pytest

from repro.candidates.extractor import ContextScope
from repro.features.featurizer import FeatureConfig
from repro.pipeline.config import FonduerConfig
from repro.pipeline.fonduer import FonduerPipeline


def build_pipeline(dataset, **config_kwargs):
    config = FonduerConfig(**config_kwargs) if config_kwargs else FonduerConfig()
    return FonduerPipeline(
        schema=dataset.schema,
        matchers=dataset.matchers,
        labeling_functions=dataset.labeling_functions,
        throttlers=dataset.throttlers,
        config=config,
    )


class TestFonduerConfig:
    def test_defaults(self):
        config = FonduerConfig()
        assert config.context_scope is ContextScope.DOCUMENT
        assert config.model == "logistic"

    def test_invalid_model(self):
        with pytest.raises(ValueError):
            FonduerConfig(model="transformer")

    def test_invalid_split_and_threshold(self):
        with pytest.raises(ValueError):
            FonduerConfig(train_split=1.5)
        with pytest.raises(ValueError):
            FonduerConfig(threshold=2.0)

    def test_executor_knobs_validated(self):
        assert FonduerConfig(executor="process", n_workers=4).executor == "process"
        with pytest.raises(ValueError):
            FonduerConfig(executor="ray")
        with pytest.raises(ValueError):
            FonduerConfig(n_workers=0)
        with pytest.raises(ValueError):
            FonduerConfig(chunk_size=0)
        with pytest.raises(ValueError):
            FonduerConfig(cache_max_entries=0)


class TestPipelineConstruction:
    def test_matchers_must_match_schema(self, electronics_dataset):
        dataset = electronics_dataset
        bad_matchers = {"bogus": list(dataset.matchers.values())[0]}
        with pytest.raises(ValueError):
            FonduerPipeline(
                schema=dataset.schema,
                matchers=bad_matchers,
                labeling_functions=dataset.labeling_functions,
            )

    def test_labeling_required_before_candidates(self, electronics_dataset):
        pipeline = build_pipeline(electronics_dataset)
        with pytest.raises(RuntimeError):
            pipeline.apply_labeling_functions()
        with pytest.raises(RuntimeError):
            pipeline.featurize()


class TestPipelineEndToEnd:
    @pytest.fixture(scope="class")
    def result(self, electronics_dataset, electronics_documents):
        pipeline = build_pipeline(electronics_dataset)
        return pipeline.run(electronics_documents, gold=electronics_dataset.gold_entries), pipeline

    def test_quality_is_reasonable(self, result):
        pipeline_result, _ = result
        assert pipeline_result.metrics.f1 > 0.6

    def test_kb_populated(self, result, electronics_dataset):
        pipeline_result, _ = result
        assert pipeline_result.kb.size(electronics_dataset.schema.name) > 0
        assert pipeline_result.kb.size() == len(
            {t for _, t in pipeline_result.extracted_entries}
        )

    def test_marginals_aligned_with_candidates(self, result):
        pipeline_result, _ = result
        assert len(pipeline_result.marginals) == pipeline_result.n_candidates
        assert np.all((pipeline_result.marginals >= 0) & (pipeline_result.marginals <= 1))

    def test_split_sizes(self, result):
        pipeline_result, _ = result
        # The training split may shrink further when candidates on which every
        # LF abstained are filtered out, but both splits stay non-empty and
        # never exceed the candidate count.
        assert 0 < pipeline_result.n_train
        assert 0 < pipeline_result.n_test
        assert pipeline_result.n_train + pipeline_result.n_test <= pipeline_result.n_candidates
        assert pipeline_result.n_train > pipeline_result.n_test

    def test_extraction_statistics_available(self, result):
        pipeline_result, _ = result
        assert pipeline_result.extraction.n_raw_candidates >= pipeline_result.n_candidates

    def test_run_without_gold_skips_metrics(self, electronics_dataset, electronics_documents):
        pipeline = build_pipeline(electronics_dataset)
        result = pipeline.run(electronics_documents)
        assert result.metrics is None

    def test_reuse_candidates_skips_extraction(self, electronics_dataset, electronics_documents):
        pipeline = build_pipeline(electronics_dataset)
        first = pipeline.run(electronics_documents, gold=electronics_dataset.gold_entries)
        extraction_before = pipeline._extraction
        second = pipeline.run(
            electronics_documents, gold=electronics_dataset.gold_entries, reuse_candidates=True
        )
        assert pipeline._extraction is extraction_before
        assert second.n_candidates == first.n_candidates

    def test_reuse_candidates_before_extraction_is_an_error(
        self, electronics_dataset, electronics_documents
    ):
        pipeline = build_pipeline(electronics_dataset)
        with pytest.raises(RuntimeError, match="reuse_candidates"):
            pipeline.run(electronics_documents, reuse_candidates=True)

    def test_feature_rows_invalidated_when_feature_config_changes(
        self, electronics_dataset, electronics_documents
    ):
        pipeline = build_pipeline(electronics_dataset)
        pipeline.generate_candidates(electronics_documents)
        full_rows = pipeline.featurize()
        assert any(name.startswith("TAB_") for row in full_rows for name in row)
        # Reconfigure the live pipeline: cached rows must not be served stale.
        pipeline.config.feature_config = FeatureConfig.without("tabular")
        ablated_rows = pipeline.featurize()
        assert not any(name.startswith("TAB_") for row in ablated_rows for name in row)
        # Mutating the config in place is picked up as well.
        pipeline.config.feature_config.tabular = True
        assert any(
            name.startswith("TAB_") for row in pipeline.featurize() for name in row
        )


class TestContextScopeConfigs:
    def test_sentence_scope_finds_nothing_for_electronics(
        self, electronics_dataset, electronics_documents
    ):
        pipeline = build_pipeline(electronics_dataset, context_scope=ContextScope.SENTENCE)
        result = pipeline.run(electronics_documents, gold=electronics_dataset.gold_entries)
        assert result.metrics.f1 < 0.3

    def test_document_scope_beats_sentence_scope(
        self, electronics_dataset, electronics_documents
    ):
        document_f1 = (
            build_pipeline(electronics_dataset, context_scope=ContextScope.DOCUMENT)
            .run(electronics_documents, gold=electronics_dataset.gold_entries)
            .metrics.f1
        )
        sentence_f1 = (
            build_pipeline(electronics_dataset, context_scope=ContextScope.SENTENCE)
            .run(electronics_documents, gold=electronics_dataset.gold_entries)
            .metrics.f1
        )
        assert document_f1 > sentence_f1


class TestSupervisionVariants:
    def test_metadata_lfs_beat_textual_lfs_on_electronics(
        self, electronics_dataset, electronics_documents
    ):
        dataset = electronics_dataset

        def run_with(lfs):
            pipeline = FonduerPipeline(
                schema=dataset.schema,
                matchers=dataset.matchers,
                labeling_functions=lfs,
                throttlers=dataset.throttlers,
            )
            return pipeline.run(electronics_documents, gold=dataset.gold_entries).metrics.f1

        textual_f1 = run_with(dataset.textual_labeling_functions)
        metadata_f1 = run_with(dataset.metadata_labeling_functions)
        assert metadata_f1 > textual_f1

    def test_single_labeling_function_uses_majority_vote(
        self, electronics_dataset, electronics_documents
    ):
        dataset = electronics_dataset
        single = [dataset.labeling_functions[0]]
        pipeline = FonduerPipeline(
            schema=dataset.schema,
            matchers=dataset.matchers,
            labeling_functions=single,
            throttlers=dataset.throttlers,
        )
        result = pipeline.run(electronics_documents, gold=dataset.gold_entries)
        assert result.n_candidates > 0

    def test_update_labeling_functions_development_mode(
        self, electronics_dataset, electronics_documents
    ):
        dataset = electronics_dataset
        pipeline = build_pipeline(dataset)
        pipeline.generate_candidates(electronics_documents)
        L_before = pipeline.apply_labeling_functions()
        pipeline.update_labeling_functions(dataset.metadata_labeling_functions)
        L_after = pipeline.apply_labeling_functions()
        assert L_after.shape[1] == len(dataset.metadata_labeling_functions)
        assert L_before.shape[1] == len(dataset.labeling_functions)

    def test_no_labeling_functions_rejected(self, electronics_dataset, electronics_documents):
        pipeline = FonduerPipeline(
            schema=electronics_dataset.schema,
            matchers=electronics_dataset.matchers,
            labeling_functions=[],
        )
        pipeline.generate_candidates(electronics_documents)
        with pytest.raises(ValueError):
            pipeline.apply_labeling_functions()


class TestFeatureAblationConfigs:
    def test_disabling_modalities_changes_feature_rows(
        self, electronics_dataset, electronics_documents
    ):
        full = build_pipeline(electronics_dataset)
        full.generate_candidates(electronics_documents)
        full_rows = full.featurize()

        ablated = build_pipeline(
            electronics_dataset, feature_config=FeatureConfig.without("tabular")
        )
        ablated.generate_candidates(electronics_documents)
        ablated_rows = ablated.featurize()
        assert sum(len(r) for r in ablated_rows) < sum(len(r) for r in full_rows)
        assert not any(
            name.startswith("TAB_") for row in ablated_rows for name in row
        )


class TestEmptyCorpus:
    def test_empty_document_list(self, electronics_dataset):
        pipeline = build_pipeline(electronics_dataset)
        result = pipeline.run([], gold=electronics_dataset.gold_entries)
        assert result.n_candidates == 0
        assert result.metrics.recall == 0.0
        assert result.kb.size() == 0


class TestLSTMModelConfig:
    def test_lstm_pipeline_runs_on_tiny_corpus(self, electronics_dataset, electronics_documents):
        from repro.learning.multimodal_lstm import MultimodalLSTMConfig

        config = FonduerConfig(
            model="lstm",
            lstm_config=MultimodalLSTMConfig(
                embedding_dim=8, hidden_dim=6, attention_dim=6, n_epochs=2, max_sequence_length=12
            ),
        )
        pipeline = FonduerPipeline(
            schema=electronics_dataset.schema,
            matchers=electronics_dataset.matchers,
            labeling_functions=electronics_dataset.labeling_functions,
            throttlers=electronics_dataset.throttlers,
            config=config,
        )
        result = pipeline.run(electronics_documents[:3], gold=electronics_dataset.gold_entries)
        assert result.n_candidates > 0
        assert result.metrics is not None


class TestUseIndexConfig:
    def test_master_knob_syncs_nested_configs(self):
        config = FonduerConfig(use_index=False)
        assert config.feature_config.use_index is False
        assert config.label_model_config.vectorized is False
        default = FonduerConfig()
        assert default.feature_config.use_index is True
        assert default.label_model_config.vectorized is True

    def test_legacy_pipeline_matches_indexed_pipeline(
        self, electronics_dataset, electronics_documents
    ):
        import numpy as np

        results = {}
        for use_index in (True, False):
            pipeline = FonduerPipeline(
                schema=electronics_dataset.schema,
                matchers=electronics_dataset.matchers,
                labeling_functions=electronics_dataset.labeling_functions,
                throttlers=electronics_dataset.throttlers,
                config=FonduerConfig(use_index=use_index),
            )
            results[use_index] = pipeline.run(
                electronics_documents, gold=electronics_dataset.gold_entries
            )
        fast, legacy = results[True], results[False]
        assert fast.n_candidates == legacy.n_candidates
        assert fast.extraction.n_raw_candidates == legacy.extraction.n_raw_candidates
        assert fast.extracted_entries == legacy.extracted_entries
        assert np.allclose(fast.marginals, legacy.marginals, rtol=0.0, atol=1e-6)
        assert fast.metrics.f1 == legacy.metrics.f1

    def test_use_index_false_does_not_mutate_shared_configs(self):
        from repro.features.featurizer import FeatureConfig
        from repro.supervision.label_model import LabelModelConfig

        shared_features = FeatureConfig()
        shared_labels = LabelModelConfig()
        legacy = FonduerConfig(
            use_index=False,
            feature_config=shared_features,
            label_model_config=shared_labels,
        )
        assert legacy.feature_config.use_index is False
        assert legacy.label_model_config.vectorized is False
        # The caller's objects keep their indexed defaults.
        assert shared_features.use_index is True
        assert shared_labels.vectorized is True
