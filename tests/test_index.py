"""Tests for the columnar DocumentIndex: build, invalidation, pickling, memos."""

import pickle

from repro.candidates.ngrams import MentionNgrams
from repro.data_model.index import (
    DocumentIndex,
    active_index,
    build_index,
    indexing_enabled,
    invalidate_index,
    traversal_mode,
)
from repro.data_model.traversal import row_ngrams
from repro.parsing.corpus import CorpusParser, RawDocument


class TestBuildAndLookup:
    def test_parse_builds_index(self, corpus_parser, simple_raw_document):
        document = corpus_parser.parse_document(simple_raw_document)
        assert isinstance(document.__dict__.get("_index"), DocumentIndex)

    def test_sentence_table_columns(self, datasheet_document):
        index = build_index(datasheet_document)
        sentences = list(datasheet_document.sentences())
        assert index.sentences == sentences
        assert index.n_sentences == len(sentences)
        for sid, sentence in enumerate(sentences):
            cell = index.cell_of_sentence(sid)
            assert cell is sentence.cell
            expected_page = sentence.page if sentence.page is not None else -1
            assert int(index.sent_page[sid]) == expected_page

    def test_active_index_is_cached(self, datasheet_document):
        first = build_index(datasheet_document)
        sentence = next(datasheet_document.sentences())
        assert active_index(sentence) is first
        assert build_index(datasheet_document) is first

    def test_traversal_mode_disables_lookup(self, datasheet_document):
        sentence = next(datasheet_document.sentences())
        build_index(datasheet_document)
        with traversal_mode(False):
            assert not indexing_enabled()
            assert active_index(sentence) is None
        assert indexing_enabled()
        assert active_index(sentence) is not None


class TestInvalidation:
    def _parsed(self):
        raw = RawDocument(
            name="inv",
            content="<section><p>Part AB1234 rated 200 mA.</p></section>",
            format="pdf",
        )
        return CorpusParser().parse_document(raw)

    def test_setter_invalidates(self):
        document = self._parsed()
        index = build_index(document)
        sentence = index.sentences[0]
        sentence.set_ner_tags(["O"] * len(sentence.words))
        assert index.stale
        rebuilt = active_index(sentence)
        assert rebuilt is not index and not rebuilt.stale

    def test_tree_growth_invalidates(self):
        from repro.data_model.context import Paragraph, Sentence

        document = self._parsed()
        index = build_index(document)
        paragraph = Paragraph(document.sections[0], position=99)
        Sentence(paragraph, words=["new", "words"], position=0)
        assert index.stale
        rebuilt = build_index(document)
        assert rebuilt.n_sentences == index.n_sentences + 1


class TestPickling:
    def test_index_is_stripped_and_rebuilt(self):
        raw = RawDocument(
            name="pkl",
            content="<section><p>Part CD5678 rated 150 mA.</p>"
            "<table><tr><th>Value</th></tr><tr><td>150</td></tr></table></section>",
            format="pdf",
        )
        document = CorpusParser().parse_document(raw)
        build_index(document)
        clone = pickle.loads(pickle.dumps(document))
        assert "_index" not in clone.__dict__
        for sentence in clone.sentences():
            assert "_dindex" not in sentence.__dict__
        # Lazy rebuild in the receiving process: traversal works and the new
        # index's identity maps refer to the clone's objects.
        span = next(MentionNgrams(n_max=1, tabular_only=True).iter_spans(clone))
        assert row_ngrams(span) == []
        rebuilt = clone.__dict__.get("_index")
        assert rebuilt is not None and rebuilt.sentences == list(clone.sentences())


class TestMemoizedAccessors:
    def test_ngram_spans_matches_legacy_enumeration(self, datasheet_document):
        space = MentionNgrams(n_max=3)
        index = build_index(datasheet_document)
        spans, texts = index.ngram_spans(1, 3)
        with traversal_mode(False):
            legacy = list(space.iter_spans(datasheet_document))
        assert spans == legacy
        assert texts == [span.text() for span in legacy]
        # Memoized: second call returns the same objects.
        assert index.ngram_spans(1, 3)[0] is spans

    def test_ngram_spans_tabular_filters(self, datasheet_document):
        index = build_index(datasheet_document)
        tabular, _ = index.ngram_spans(1, 1, tabular_only=True)
        non_tabular, _ = index.ngram_spans(1, 1, non_tabular_only=True)
        assert tabular and all(s.is_tabular for s in tabular)
        assert non_tabular and all(not s.is_tabular for s in non_tabular)
        assert len(tabular) + len(non_tabular) == len(index.ngram_spans(1, 1)[0])

    def test_span_box_matches_bounding_box(self, datasheet_document):
        index = build_index(datasheet_document)
        for span in list(MentionNgrams(n_max=2).iter_spans(datasheet_document))[:50]:
            sid = index.sentence_id(span.sentence)
            assert index.span_box(sid, span.word_start, span.word_end) == span.bounding_box

    def test_invalidate_index_is_idempotent(self, datasheet_document):
        build_index(datasheet_document)
        invalidate_index(datasheet_document)
        invalidate_index(datasheet_document)
        assert datasheet_document.__dict__.get("_index") is None
        assert build_index(datasheet_document) is not None
