"""Shared fixtures: small documents, parsed corpora and candidate sets."""

from __future__ import annotations

import pytest

from repro.candidates.extractor import CandidateExtractor
from repro.datasets import load_dataset
from repro.parsing.corpus import CorpusParser, RawDocument
from repro.parsing.html_parser import HtmlDocParser
from repro.parsing.pdf_layout import LayoutEngine
from repro.supervision.gold import gold_labels_for_candidates


DATASHEET_HTML = """
<section id="datasheet">
  <h1 class="part-header" style="font-weight:bold">SMBT3904 ... MMBT3904</h1>
  <p>NPN Silicon Switching Transistors</p>
  <p>High DC current gain. Low collector-emitter saturation voltage.</p>
  <h2>Maximum Ratings</h2>
  <table id="ratings">
    <tr><th>Parameter</th><th>Symbol</th><th>Value</th><th>Unit</th></tr>
    <tr><td>Collector-emitter voltage</td><td>VCEO</td><td>40</td><td>V</td></tr>
    <tr><td>Collector-base voltage</td><td>VCBO</td><td>60</td><td>V</td></tr>
    <tr><td>Emitter-base voltage</td><td>VEBO</td><td>6</td><td>V</td></tr>
    <tr><td>Collector current</td><td>IC</td><td>200</td><td>mA</td></tr>
    <tr><td>Total power dissipation</td><td>Ptot</td><td colspan="2">330 mW</td></tr>
    <tr><td>Junction temperature</td><td>Tj</td><td>150</td><td>°C</td></tr>
    <tr><td>Storage temperature</td><td>Tstg</td><td>-65 ... 150</td><td>°C</td></tr>
  </table>
</section>
"""


@pytest.fixture(scope="session")
def datasheet_document():
    """A parsed and visually rendered datasheet document (Figure 1 style)."""
    parser = HtmlDocParser()
    document = parser.parse("datasheet_test", DATASHEET_HTML)
    LayoutEngine().render(document)
    return document


@pytest.fixture(scope="session")
def electronics_dataset():
    """A small ELECTRONICS dataset (8 documents, fixed seed)."""
    return load_dataset("electronics", n_docs=8, seed=7)


@pytest.fixture(scope="session")
def electronics_documents(electronics_dataset):
    return electronics_dataset.parse_documents()


@pytest.fixture(scope="session")
def electronics_candidates(electronics_dataset, electronics_documents):
    """Candidates + gold labels for the small ELECTRONICS corpus."""
    dataset = electronics_dataset
    extractor = CandidateExtractor(
        dataset.schema.name,
        {t: dataset.matchers[t] for t in dataset.schema.entity_types},
        throttlers=dataset.throttlers,
    )
    candidates = extractor.extract(electronics_documents).candidates
    gold = gold_labels_for_candidates(candidates, dataset.corpus.gold_by_document())
    return candidates, gold


@pytest.fixture(scope="session")
def genomics_dataset():
    """A small GENOMICS dataset (6 XML documents, fixed seed)."""
    return load_dataset("genomics", n_docs=6, seed=7)


@pytest.fixture(scope="session")
def genomics_documents(genomics_dataset):
    return genomics_dataset.parse_documents()


@pytest.fixture()
def corpus_parser():
    return CorpusParser()


@pytest.fixture()
def simple_raw_document():
    return RawDocument(
        name="simple",
        content="<section><p>The part BC5478 has a rating of 250 mA.</p></section>",
        format="pdf",
    )
