"""The queryable KB store: segments, snapshots, indexes, isolation, rebuilds."""

from __future__ import annotations

import json
import threading

import pytest

from repro.kb.query import KBQuery
from repro.kb.store import KBStore


def make_row(
    relation="has_current",
    doc="doc0",
    entities=("part-a", "150"),
    marginal=0.9,
    candidate=0,
):
    return {
        "relation": relation,
        "doc_name": doc,
        "doc_path": f"docs/{doc}.html",
        "entities": list(entities),
        "spans": [["part", f"{doc}::sentence:0::span:0-1"]],
        "marginal": marginal,
        "candidate": candidate,
    }


def publish_rows(store, per_shard_rows, key_prefix="k"):
    """Publish one snapshot: shard position -> row list."""
    update = store.begin_update()
    for position, rows in enumerate(per_shard_rows):
        update.upsert(position, f"shard-{position}", f"{key_prefix}-{position}", rows)
    return update.publish()


class TestStoreRoundtrip:
    def test_empty_store_has_version_zero(self, tmp_path):
        store = KBStore(tmp_path / "kb")
        snapshot = store.snapshot()
        assert snapshot.version == 0 and snapshot.n_tuples == 0
        assert snapshot.query(KBQuery()).total == 0

    def test_publish_and_query_roundtrip(self, tmp_path):
        store = KBStore(tmp_path / "kb")
        snapshot = publish_rows(
            store,
            [
                [make_row(doc="doc0", candidate=0), make_row(doc="doc1", candidate=1)],
                [make_row(doc="doc2", entities=("part-b", "77"), candidate=2)],
            ],
        )
        assert snapshot.version == 1 and snapshot.n_tuples == 3
        result = snapshot.query(KBQuery())
        assert result.total == 3
        # Global order: segments by shard position, rows in candidate order.
        assert [row["candidate"] for row in result.rows] == [0, 1, 2]
        assert result.rows[0]["shard_id"] == "shard-0"
        assert result.rows[2]["shard"] == 1
        # Provenance round-trips.
        assert result.rows[0]["doc_path"] == "docs/doc0.html"
        assert result.rows[0]["spans"] == [["part", "doc0::sentence:0::span:0-1"]]

    def test_filters_and_indexes(self, tmp_path):
        store = KBStore(tmp_path / "kb")
        rows = [
            make_row(relation="rel_a", doc="doc0", entities=("alpha beta", "1"), candidate=0),
            make_row(relation="rel_b", doc="doc0", entities=("gamma", "2"), marginal=0.6, candidate=1),
            make_row(relation="rel_a", doc="doc1", entities=("beta", "3"), marginal=0.8, candidate=2),
        ]
        snapshot = publish_rows(store, [rows])
        query = snapshot.query
        assert query(KBQuery(relation="rel_a")).total == 2
        assert query(KBQuery(doc="doc0")).total == 2
        # doc matches by path too.
        assert query(KBQuery(doc="docs/doc1.html")).total == 1
        # Entity word unigram matches inside multi-word entities.
        assert {r["candidate"] for r in query(KBQuery(entity="beta")).rows} == {0, 2}
        # Full normalized entity string matches exactly.
        assert query(KBQuery(entity="Alpha  Beta")).total == 1
        assert query(KBQuery(entity="alpha gamma")).total == 0
        # Marginal range + conjunction.
        assert query(KBQuery(min_marginal=0.7)).total == 2
        assert query(KBQuery(relation="rel_a", max_marginal=0.85)).total == 1
        assert query(KBQuery(relation="rel_b", entity="gamma", min_marginal=0.5)).total == 1

    def test_pagination_is_stable(self, tmp_path):
        store = KBStore(tmp_path / "kb")
        shards = [
            [make_row(candidate=i + 10 * p) for i in range(5)] for p in range(3)
        ]
        snapshot = publish_rows(store, shards)
        pages = []
        offset = 0
        while True:
            page = snapshot.query(KBQuery(limit=4, offset=offset))
            pages.extend(row["candidate"] for row in page.rows)
            if not page.has_more:
                break
            offset += len(page.rows)
        everything = snapshot.query(KBQuery(limit=100))
        assert pages == [row["candidate"] for row in everything.rows]
        assert everything.total == 15

    def test_query_validation(self, tmp_path):
        snapshot = publish_rows(KBStore(tmp_path / "kb"), [[make_row()]])
        with pytest.raises(ValueError):
            snapshot.query(KBQuery(limit=0))
        with pytest.raises(ValueError):
            snapshot.query(KBQuery(offset=-1))
        with pytest.raises(ValueError):
            snapshot.query(KBQuery(min_marginal=1.5))
        with pytest.raises(ValueError, match="Unknown query parameter"):
            KBQuery.from_params({"relaton": "typo"})
        with pytest.raises(ValueError, match="Malformed numeric"):
            KBQuery.from_params({"limit": "many"})


class TestIncrementalUpserts:
    def test_reuse_by_key_skips_everything(self, tmp_path):
        store = KBStore(tmp_path / "kb")
        publish_rows(store, [[make_row(candidate=0)], [make_row(candidate=1)]])
        update = store.begin_update()
        assert update.reuse_if_current(0, "k-0")
        assert update.reuse_if_current(1, "k-1")
        assert not update.reuse_if_current(2, "k-2")  # unknown shard
        snapshot = update.publish()
        assert update.n_reused == 2 and update.n_written == 0
        assert snapshot.version == 2 and snapshot.n_tuples == 2

    def test_key_change_with_same_content_adopts_existing_file(self, tmp_path):
        store = KBStore(tmp_path / "kb")
        first = publish_rows(store, [[make_row()]], key_prefix="old")
        update = store.begin_update()
        assert not update.reuse_if_current(0, "new-0")  # key changed
        update.upsert(0, "shard-0", "new-0", [make_row()])  # same content
        second = update.publish()
        assert update.n_written == 0 and update.n_unchanged == 1
        # Same immutable file, new key in the pointer.
        assert second.records[0]["file"] == first.records[0]["file"]
        assert second.records[0]["key"] == "new-0"

    def test_content_change_writes_new_segment_only(self, tmp_path):
        store = KBStore(tmp_path / "kb")
        first = publish_rows(store, [[make_row(candidate=0)], [make_row(candidate=1)]])
        update = store.begin_update()
        assert update.reuse_if_current(0, "k-0")
        update.upsert(1, "shard-1", "k2-1", [make_row(candidate=1, marginal=0.99)])
        second = update.publish()
        assert update.n_written == 1 and update.n_reused == 1
        assert second.records[0]["file"] == first.records[0]["file"]
        assert second.records[1]["file"] != first.records[1]["file"]

    def test_reuse_requires_segment_file_on_disk(self, tmp_path):
        store = KBStore(tmp_path / "kb")
        snapshot = publish_rows(store, [[make_row()]])
        (store.segments_dir / snapshot.records[0]["file"]).unlink()
        update = store.begin_update()
        assert not update.reuse_if_current(0, "k-0")

    def test_publish_prunes_with_one_generation_grace(self, tmp_path):
        store = KBStore(tmp_path / "kb")
        first = publish_rows(store, [[make_row(marginal=0.7)]], key_prefix="a")
        second = publish_rows(store, [[make_row(marginal=0.8)]], key_prefix="b")
        listed = {p.name for p in store.segments_dir.glob("seg-*.json")}
        # Grace: the generation the new pointer replaced is still on disk.
        assert first.records[0]["file"] in listed
        third = publish_rows(store, [[make_row(marginal=0.9)]], key_prefix="c")
        listed = {p.name for p in store.segments_dir.glob("seg-*.json")}
        assert first.records[0]["file"] not in listed
        assert second.records[0]["file"] in listed
        assert third.records[0]["file"] in listed

    def test_publish_only_once(self, tmp_path):
        store = KBStore(tmp_path / "kb")
        update = store.begin_update()
        update.upsert(0, "shard-0", "k", [make_row()])
        update.publish()
        with pytest.raises(RuntimeError):
            update.publish()

    def test_segment_cache_reuses_unchanged_segments(self, tmp_path):
        store = KBStore(tmp_path / "kb")
        publish_rows(store, [[make_row(candidate=0)], [make_row(candidate=1)]])
        store.snapshot()
        loads_before = store._segments.loads
        # Republish with one changed shard: only that one is re-loaded.
        update = store.begin_update()
        assert update.reuse_if_current(0, "k-0")
        update.upsert(1, "shard-1", "k2", [make_row(candidate=1, marginal=0.3)])
        update.publish()
        store.snapshot()
        assert store._segments.loads == loads_before + 1


class TestSnapshotIsolation:
    def test_held_snapshot_survives_republication(self, tmp_path):
        store = KBStore(tmp_path / "kb")
        old = publish_rows(store, [[make_row(candidate=i) for i in range(4)]])
        publish_rows(store, [[make_row(candidate=9)]], key_prefix="new")
        # The held snapshot still answers from its own immutable segments.
        assert old.query(KBQuery()).total == 4
        assert store.snapshot().query(KBQuery()).total == 1

    def test_concurrent_readers_never_observe_a_mixed_snapshot(self, tmp_path):
        """Readers racing republication always see one coherent version.

        Version v publishes exactly v tuples, all carrying marginal
        (50 + v) / 100 — so any response mixing two versions is detectable
        from the row count or from a marginal that contradicts the count.
        """
        store = KBStore(tmp_path / "kb")

        def rows_for(version: int):
            marginal = (50 + version) / 100.0
            per_shard = [[], []]
            for i in range(version):
                per_shard[i % 2].append(make_row(candidate=i, marginal=marginal))
            return per_shard

        publish_rows(KBStore(tmp_path / "kb"), rows_for(1), key_prefix="v1")
        errors = []
        done = threading.Event()

        def reader():
            while not done.is_set():
                snapshot = store.snapshot()
                result = snapshot.query(KBQuery(limit=1000))
                expected_marginal = (50 + result.version) / 100.0
                if result.total != result.version:
                    errors.append(f"v{result.version} served {result.total} tuples")
                for row in result.rows:
                    if abs(row["marginal"] - expected_marginal) > 1e-12:
                        errors.append(
                            f"v{result.version} row with marginal {row['marginal']}"
                        )

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        writer = KBStore(tmp_path / "kb")
        for version in range(2, 30):
            update = writer.begin_update()
            for position, rows in enumerate(rows_for(version)):
                update.upsert(position, f"shard-{position}", f"v{version}-{position}", rows)
            update.publish()
        done.set()
        for thread in threads:
            thread.join()
        assert errors == []


class TestRebuildEquivalence:
    def test_rebuild_is_byte_identical_to_incremental(self, tmp_path):
        """Property: N incremental upserts == one fresh rebuild, byte for byte."""
        incremental = KBStore(tmp_path / "inc")
        # Three generations of edits, each touching a different subset.
        generations = [
            [[make_row(candidate=0)], [make_row(candidate=1)], []],
            [[make_row(candidate=0)], [make_row(candidate=1, marginal=0.95)], []],
            [
                [make_row(candidate=0)],
                [make_row(candidate=1, marginal=0.95)],
                [make_row(candidate=2, entities=("new", "5"))],
            ],
        ]
        for generation_index, generation in enumerate(generations):
            update = incremental.begin_update()
            for position, rows in enumerate(generation):
                key = f"g{generation_index}-{position}"
                update.upsert(position, f"shard-{position}", key, rows)
            update.publish()

        rebuilt = KBStore(tmp_path / "rebuilt")
        update = rebuilt.rebuild()
        for position, rows in enumerate(generations[-1]):
            update.upsert(position, f"shard-{position}", f"g2-{position}", rows)
        update.publish()

        pointer_inc = incremental.read_pointer()
        pointer_reb = rebuilt.read_pointer()
        files_inc = [record["file"] for record in pointer_inc["segments"]]
        files_reb = [record["file"] for record in pointer_reb["segments"]]
        assert files_inc == files_reb  # content-addressed names agree
        for filename in files_inc:
            assert (incremental.segments_dir / filename).read_bytes() == (
                rebuilt.segments_dir / filename
            ).read_bytes()
        assert list(incremental.snapshot().iter_rows()) == list(
            rebuilt.snapshot().iter_rows()
        )

    def test_rebuild_ignores_stale_pointer_keys(self, tmp_path):
        store = KBStore(tmp_path / "kb")
        publish_rows(store, [[make_row()]])
        update = store.rebuild()
        # Same key as published — rebuild must not reuse-by-key.
        assert not update.reuse_if_current(0, "k-0")


class TestPointerRobustness:
    def test_corrupt_pointer_reads_as_empty(self, tmp_path):
        store = KBStore(tmp_path / "kb")
        publish_rows(store, [[make_row()]])
        store.pointer_path.write_text("{not json")
        fresh = KBStore(tmp_path / "kb")
        assert fresh.snapshot().version == 0

    def test_other_schema_pointer_ignored(self, tmp_path):
        store = KBStore(tmp_path / "kb")
        store.root.mkdir(parents=True)
        store.pointer_path.write_text(
            json.dumps({"schema_version": 999, "version": 5, "segments": []})
        )
        assert store.snapshot().version == 0


class TestWithinFilter:
    """The structural ``within`` filter over recorded span intervals."""

    def _publish(self, store, key_prefix="k"):
        def with_interval(row, interval):
            row["interval"] = interval
            return row

        return publish_rows(
            store,
            [
                [
                    with_interval(make_row(doc="doc0", candidate=0), [3, 5]),
                    with_interval(make_row(doc="doc0", candidate=1), [6, 6]),
                    make_row(doc="doc0", candidate=2),  # pre-interval row
                ],
                [with_interval(make_row(doc="doc1", candidate=3), [4, 4])],
            ],
            key_prefix=key_prefix,
        )

    def test_within_requires_doc(self):
        with pytest.raises(ValueError, match="doc"):
            KBQuery(within="2-9").validate()

    @pytest.mark.parametrize("bad", ["abc", "5-2", "-1-3", "3", "1-2-3"])
    def test_malformed_within_is_rejected(self, bad):
        with pytest.raises(ValueError):
            KBQuery(doc="doc0", within=bad).validate()

    @pytest.mark.parametrize("segment_mode", ["heap", "mmap"])
    def test_within_matches_contained_intervals(self, tmp_path, segment_mode):
        store = KBStore(tmp_path / "kb")
        self._publish(store)
        reader = KBStore(tmp_path / "kb", segment_mode=segment_mode)
        snapshot = reader.snapshot()

        def candidates(within):
            result = snapshot.query(KBQuery(doc="doc0", within=within))
            return [row["candidate"] for row in result.rows]

        assert candidates("0-99") == [0, 1]  # whole document; no sentinel rows
        assert candidates("3-5") == [0]
        assert candidates("6-6") == [1]
        assert candidates("7-9") == []
        # Containment is of the whole interval: [3,5] is not inside [4,9].
        assert candidates("4-9") == [1]

    @pytest.mark.parametrize("segment_mode", ["heap", "mmap"])
    def test_rows_carry_their_interval(self, tmp_path, segment_mode):
        store = KBStore(tmp_path / "kb")
        self._publish(store)
        reader = KBStore(tmp_path / "kb", segment_mode=segment_mode)
        rows = reader.snapshot().query(KBQuery(limit=1000)).rows
        by_candidate = {row["candidate"]: row["interval"] for row in rows}
        assert by_candidate == {0: [3, 5], 1: [6, 6], 2: [-1, -1], 3: [4, 4]}

    def test_old_schema_segment_reads_with_sentinel_intervals(self, tmp_path):
        """A segment published before the interval column existed still
        loads; its rows answer ``[-1, -1]`` and never match ``within``."""
        store = KBStore(tmp_path / "kb")
        publish_rows(store, [[make_row(doc="doc0", candidate=0)]])
        segment_file = next((tmp_path / "kb" / "segments").glob("seg-*.json"))
        payload = json.loads(segment_file.read_text())
        assert payload["columns"].pop("interval") == [[-1, -1]]
        # Rewrite without the column, fixing the content-addressed name.
        from repro.engine.fingerprint import stable_fingerprint

        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        new_name = f"seg-00000-{stable_fingerprint(text)[:16]}.json"
        (segment_file.parent / new_name).write_text(text)
        pointer_path = tmp_path / "kb" / "snapshot.json"
        pointer = json.loads(pointer_path.read_text())
        pointer["segments"][0]["file"] = new_name
        pointer_path.write_text(json.dumps(pointer))

        snapshot = KBStore(tmp_path / "kb").snapshot()
        rows = snapshot.query(KBQuery(limit=10)).rows
        assert rows[0]["interval"] == [-1, -1]
        assert snapshot.query(KBQuery(doc="doc0", within="0-999")).total == 0

    def test_old_generation_arena_is_rebuilt_not_served(self, tmp_path):
        """An arena written under a previous layout generation fails the
        magic check and is rebuilt from its JSON source transparently."""
        from repro.kb.arena import ARENA_MAGIC, arena_path_for

        store = KBStore(tmp_path / "kb")
        self._publish(store)
        warm = KBStore(tmp_path / "kb", segment_mode="mmap")
        assert warm.snapshot().query(KBQuery(doc="doc0", within="3-5")).total == 1

        segment_file = next((tmp_path / "kb" / "segments").glob("seg-00000-*.json"))
        arena_path = arena_path_for(segment_file)
        stale = bytearray(arena_path.read_bytes())
        stale[: len(ARENA_MAGIC)] = b"KBARENA1"
        arena_path.write_bytes(bytes(stale))

        reader = KBStore(tmp_path / "kb", segment_mode="mmap")
        result = reader.snapshot().query(KBQuery(doc="doc0", within="3-5"))
        assert [row["candidate"] for row in result.rows] == [0]
        # The rebuilt arena carries the current magic again.
        assert arena_path.read_bytes()[: len(ARENA_MAGIC)] == ARENA_MAGIC

    def test_canonical_key_folds_equivalent_within_spellings(self):
        a = KBQuery(doc="d", within="03-7").canonical_key()
        b = KBQuery(doc="d", within="3-7").canonical_key()
        assert a == b
