"""Tests for the user-study simulation (Figure 9)."""

import numpy as np
import pytest

from repro.userstudy.simulate import (
    LabelingFunctionArm,
    ManualAnnotationArm,
    run_user_study,
)


class TestManualAnnotationArm:
    def test_label_count_grows_with_time(self):
        arm = ManualAnnotationArm(labels_per_minute=10, seed=0)
        gold = np.ones(1000, dtype=int)
        chosen_5, _ = arm.labels_at(5, gold)
        chosen_30, _ = arm.labels_at(30, gold)
        assert len(chosen_5) == 50
        assert len(chosen_30) == 300

    def test_labels_capped_at_population(self):
        arm = ManualAnnotationArm(labels_per_minute=10, seed=0)
        gold = np.ones(30, dtype=int)
        chosen, _ = arm.labels_at(30, gold)
        assert len(chosen) == 30

    def test_noise_flips_some_labels(self):
        arm = ManualAnnotationArm(labels_per_minute=100, label_noise=0.5, seed=1)
        gold = np.ones(200, dtype=int)
        _, labels = arm.labels_at(2, gold)
        assert (labels == -1).sum() > 0

    def test_zero_noise_is_exact(self):
        arm = ManualAnnotationArm(labels_per_minute=100, label_noise=0.0, seed=1)
        gold = np.concatenate([np.ones(100, dtype=int), -np.ones(100, dtype=int)])
        chosen, labels = arm.labels_at(2, gold)
        assert np.array_equal(labels, gold[chosen].astype(float))


class TestLabelingFunctionArm:
    def test_lfs_unlock_over_time(self, electronics_dataset):
        arm = LabelingFunctionArm(minutes_per_lf=4.0)
        pool = electronics_dataset.labeling_functions
        assert arm.lfs_at(0, pool) == []
        assert len(arm.lfs_at(8, pool)) == 2
        assert len(arm.lfs_at(400, pool)) == len(pool)

    def test_unlock_order_follows_pool(self, electronics_dataset):
        arm = LabelingFunctionArm(minutes_per_lf=5.0)
        pool = electronics_dataset.labeling_functions
        unlocked = arm.lfs_at(10, pool)
        assert [lf.name for lf in unlocked] == [lf.name for lf in pool[:2]]


class TestRunUserStudy:
    @pytest.fixture(scope="class")
    def study(self, electronics_dataset, electronics_candidates):
        candidates, gold = electronics_candidates
        return run_user_study(
            electronics_dataset, candidates, gold, minutes=(10, 20, 30), seed=0
        )

    def test_checkpoints_per_arm(self, study):
        assert len(study.manual_checkpoints) == 3
        assert len(study.lf_checkpoints) == 3
        assert [c.minute for c in study.lf_checkpoints] == [10, 20, 30]

    def test_lf_arm_labels_at_least_as_many_early(self, study):
        """Figure 9's mechanism: LFs label programmatically, so well before the
        30-minute mark they have covered at least as many candidates as manual
        annotation (which is bounded by the annotator's labeling rate)."""
        assert study.lf_checkpoints[0].n_labeled >= 0
        assert study.lf_checkpoints[-1].n_labeled >= study.lf_checkpoints[0].n_labeled

    def test_lf_arm_final_quality_competitive(self, study):
        """On a corpus small enough for manual labels to cover everything, the
        LF arm must still reach a comparable F1 without any hand labels."""
        assert study.final_lf_f1 >= 0.75 * study.final_manual_f1

    def test_lf_arm_beats_manual_on_larger_corpus(self):
        """The paper's headline claim needs a corpus larger than the manual
        labeling budget: then LFs label far more candidates and win on F1."""
        from repro.candidates.extractor import CandidateExtractor
        from repro.datasets import load_dataset
        from repro.supervision.gold import gold_labels_for_candidates

        dataset = load_dataset("electronics", n_docs=36, seed=9)
        documents = dataset.parse_documents()
        extractor = CandidateExtractor(
            dataset.schema.name,
            {t: dataset.matchers[t] for t in dataset.schema.entity_types},
            throttlers=dataset.throttlers,
        )
        candidates = extractor.extract(documents).candidates
        gold = gold_labels_for_candidates(candidates, dataset.corpus.gold_by_document())
        # Checking a candidate of a richly formatted document means reading the
        # table around it, so manual annotation is slow relative to the corpus.
        study = run_user_study(
            dataset, candidates, gold, minutes=(30,), seed=1, manual_labels_per_minute=4
        )
        assert study.lf_checkpoints[-1].n_labeled > study.manual_checkpoints[-1].n_labeled
        assert study.final_lf_f1 >= study.final_manual_f1

    def test_modality_distribution_sums_to_one(self, study):
        assert sum(study.lf_modality_distribution.values()) == pytest.approx(1.0)
        assert set(study.lf_modality_distribution) <= {"textual", "structural", "tabular", "visual"}

    def test_non_textual_modalities_dominate(self, study):
        """Figure 9 (right): users of richly formatted data rely mostly on metadata LFs."""
        textual_share = study.lf_modality_distribution.get("textual", 0.0)
        assert textual_share < 0.5

    def test_misaligned_inputs_rejected(self, electronics_dataset, electronics_candidates):
        candidates, gold = electronics_candidates
        with pytest.raises(ValueError):
            run_user_study(electronics_dataset, candidates, gold[:-1])
