"""Tests for weak supervision: labeling functions, LF metrics, label model, gold."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.supervision.analysis import (
    conflict,
    coverage,
    empirical_accuracy,
    lf_summary,
    overlap,
)
from repro.supervision.gold import gold_labels_for_candidates, positive_fraction
from repro.supervision.label_model import LabelModel, LabelModelConfig, MajorityVoter
from repro.supervision.labeling import ABSTAIN, FALSE, TRUE, LabelingFunction, LFApplier, labeling_function
from repro.storage.sparse import COOMatrix


class FakeCandidate:
    """Minimal candidate stand-in for labeling tests."""

    _counter = 0

    def __init__(self, value):
        FakeCandidate._counter += 1
        self.id = FakeCandidate._counter
        self.value = value


class TestLabelingFunction:
    def test_decorator_sets_name_and_modality(self):
        @labeling_function(modality="tabular")
        def lf_example(candidate):
            return 1

        assert isinstance(lf_example, LabelingFunction)
        assert lf_example.name == "lf_example"
        assert lf_example.modality == "tabular"

    def test_invalid_label_rejected(self):
        lf = LabelingFunction("bad", lambda c: 7)
        with pytest.raises(ValueError):
            lf(FakeCandidate(0))

    def test_valid_labels(self):
        lf = LabelingFunction("ok", lambda c: TRUE if c.value > 0 else FALSE)
        assert lf(FakeCandidate(1)) == 1
        assert lf(FakeCandidate(-1)) == -1


class TestLFApplier:
    def make_lfs(self):
        return [
            LabelingFunction("lf_pos", lambda c: TRUE if c.value > 0 else ABSTAIN),
            LabelingFunction("lf_neg", lambda c: FALSE if c.value < 0 else ABSTAIN),
            LabelingFunction("lf_zero_neg", lambda c: FALSE if c.value == 0 else ABSTAIN),
        ]

    def test_requires_lfs_and_unique_names(self):
        with pytest.raises(ValueError):
            LFApplier([])
        duplicated = [LabelingFunction("same", lambda c: 0), LabelingFunction("same", lambda c: 0)]
        with pytest.raises(ValueError):
            LFApplier(duplicated)

    def test_dense_application(self):
        applier = LFApplier(self.make_lfs())
        candidates = [FakeCandidate(v) for v in (1, -1, 0)]
        L = applier.apply_dense(candidates)
        assert L.shape == (3, 3)
        assert L[0, 0] == 1 and L[1, 1] == -1 and L[2, 2] == -1
        assert L[0, 1] == 0  # abstain not stored as a vote

    def test_sparse_application_skips_abstains(self):
        applier = LFApplier(self.make_lfs())
        candidates = [FakeCandidate(v) for v in (1, -1)]
        matrix = applier.apply(candidates, matrix=COOMatrix())
        assert matrix.nnz() == 2
        assert matrix.get(candidates[0].id, "lf_pos") == 1.0


class TestAnalysisMetrics:
    def example_matrix(self):
        return np.array(
            [
                [1, 1, 0],
                [1, -1, 0],
                [0, 0, 0],
                [0, -1, -1],
            ]
        )

    def test_coverage(self):
        cov = coverage(self.example_matrix())
        assert cov.tolist() == [0.5, 0.75, 0.25]

    def test_overlap(self):
        ov = overlap(self.example_matrix())
        assert ov[0] == 0.5  # rows 0 and 1
        assert ov[2] == 0.25

    def test_conflict(self):
        conf = conflict(self.example_matrix())
        assert conf[0] == 0.25  # row 1 disagreement with lf2
        assert conf[2] == 0.0

    def test_empirical_accuracy(self):
        gold = np.array([1, 1, -1, -1])
        acc = empirical_accuracy(self.example_matrix(), gold)
        assert acc[0] == 1.0
        assert acc[1] == pytest.approx(2 / 3)

    def test_lf_summary(self):
        summaries = lf_summary(self.example_matrix(), ["a", "b", "c"], gold=np.array([1, 1, -1, -1]))
        assert [s.name for s in summaries] == ["a", "b", "c"]
        assert summaries[0].polarity == [1]
        assert summaries[1].polarity == [-1, 1]
        assert summaries[0].accuracy == 1.0
        assert "coverage" in summaries[0].as_dict()

    def test_lf_summary_shape_mismatch(self):
        with pytest.raises(ValueError):
            lf_summary(self.example_matrix(), ["a", "b"])

    def test_empty_matrix(self):
        empty = np.zeros((0, 3))
        assert coverage(empty).tolist() == [0, 0, 0]
        assert overlap(empty).tolist() == [0, 0, 0]
        assert conflict(empty).tolist() == [0, 0, 0]


class TestMajorityVoter:
    def test_probabilities(self):
        L = np.array([[1, 1, -1], [0, 0, 0], [-1, -1, 0]])
        proba = MajorityVoter().predict_proba(L)
        assert proba[0] > 0.5
        assert proba[1] == 0.5
        assert proba[2] < 0.5

    def test_hard_predictions(self):
        L = np.array([[1, 1], [-1, -1]])
        assert MajorityVoter().predict(L).tolist() == [1, -1]


class TestLabelModel:
    def synthetic_matrix(self, n=300, seed=0):
        """LFs with known accuracies over balanced latent labels."""
        rng = np.random.default_rng(seed)
        y = rng.choice([-1, 1], size=n)
        accuracies = [0.9, 0.75, 0.6]
        coverages = [0.8, 0.6, 0.5]
        L = np.zeros((n, 3), dtype=int)
        for j, (acc, cov) in enumerate(zip(accuracies, coverages)):
            fires = rng.random(n) < cov
            correct = rng.random(n) < acc
            L[fires & correct, j] = y[fires & correct]
            L[fires & ~correct, j] = -y[fires & ~correct]
        return L, y

    def test_accuracy_estimates_ordered(self):
        L, _ = self.synthetic_matrix()
        model = LabelModel().fit(L)
        estimated = model.estimated_accuracies
        assert estimated[0] > estimated[1] > estimated[2] - 0.05

    def test_marginals_beat_single_lf(self):
        L, y = self.synthetic_matrix()
        marginals = LabelModel().fit_predict_proba(L)
        predictions = np.where(marginals > 0.5, 1, -1)
        model_accuracy = (predictions == y).mean()
        single_lf_accuracy = (np.where(L[:, 2] != 0, L[:, 2], 1) == y).mean()
        assert model_accuracy > single_lf_accuracy

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LabelModel().predict_proba(np.zeros((2, 2)))
        with pytest.raises(RuntimeError):
            _ = LabelModel().estimated_accuracies

    def test_empty_matrix_handled(self):
        model = LabelModel().fit(np.zeros((0, 3)))
        assert model.accuracies_.shape == (3,)

    def test_non_2d_matrix_rejected(self):
        with pytest.raises(ValueError):
            LabelModel().fit(np.zeros(5))

    def test_fixed_class_prior_by_default(self):
        L = np.ones((50, 2), dtype=int)  # blanket positive LFs
        model = LabelModel().fit(L)
        assert model.class_prior_ == pytest.approx(0.5)

    def test_learned_class_prior_option(self):
        L, _ = self.synthetic_matrix()
        config = LabelModelConfig(learn_class_prior=True)
        model = LabelModel(config).fit(L)
        assert 0.05 <= model.class_prior_ <= 0.95

    def test_predict_threshold(self):
        L, _ = self.synthetic_matrix()
        model = LabelModel().fit(L)
        strict = (model.predict(L, threshold=0.9) == 1).sum()
        lenient = (model.predict(L, threshold=0.1) == 1).sum()
        assert strict <= lenient

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_marginals_in_unit_interval(self, seed):
        L, _ = self.synthetic_matrix(n=60, seed=seed)
        marginals = LabelModel().fit_predict_proba(L)
        assert np.all((marginals >= 0) & (marginals <= 1))


class TestGoldLabels:
    def test_gold_labels_against_dataset(self, electronics_candidates, electronics_dataset):
        candidates, gold = electronics_candidates
        assert len(gold) == len(candidates)
        assert set(np.unique(gold)) <= {-1, 1}
        # Gold positives correspond exactly to tuples in the per-document truth.
        truth = electronics_dataset.corpus.gold_by_document()
        for candidate, label in zip(candidates, gold):
            in_truth = candidate.entity_tuple in truth.get(candidate.document.name, set())
            assert (label == 1) == in_truth

    def test_positive_fraction(self):
        assert positive_fraction(np.array([1, -1, 1, -1])) == 0.5
        assert positive_fraction(np.array([])) == 0.0

    def test_unknown_document_is_negative(self, electronics_candidates):
        candidates, _ = electronics_candidates
        labels = gold_labels_for_candidates(candidates[:5], {})
        assert (labels == -1).all()


class TestVectorizedLabelModelEquivalence:
    """The vectorized EM and the legacy per-LF loop must agree on accuracies
    and marginals (bitwise when every LF always votes; within float-summation
    noise when LFs abstain)."""

    def _random_matrix(self, seed, n=120, m=6, abstain=0.4):
        rng = np.random.default_rng(seed)
        L = rng.choice([-1, 0, 1], size=(n, m), p=[(1 - abstain) / 2, abstain, (1 - abstain) / 2])
        return L.astype(int)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_marginals_agree(self, seed):
        L = self._random_matrix(seed)
        fast = LabelModel(LabelModelConfig(vectorized=True)).fit(L)
        legacy = LabelModel(LabelModelConfig(vectorized=False)).fit(L)
        assert np.allclose(fast.estimated_accuracies, legacy.estimated_accuracies,
                           rtol=0.0, atol=1e-9)
        assert np.allclose(fast.predict_proba(L), legacy.predict_proba(L),
                           rtol=0.0, atol=1e-9)

    @pytest.mark.parametrize("seed", [0, 7])
    def test_bitwise_equal_without_abstains(self, seed):
        L = self._random_matrix(seed, abstain=0.0)
        fast = LabelModel(LabelModelConfig(vectorized=True)).fit(L)
        legacy = LabelModel(LabelModelConfig(vectorized=False)).fit(L)
        assert np.array_equal(fast.estimated_accuracies, legacy.estimated_accuracies)
        assert np.array_equal(fast.predict_proba(L), legacy.predict_proba(L))

    def test_empty_and_silent_lf_handling(self):
        fast = LabelModel(LabelModelConfig(vectorized=True))
        legacy = LabelModel(LabelModelConfig(vectorized=False))
        # An LF that never votes keeps its initial (clipped) accuracy on both paths.
        L = np.zeros((30, 2), dtype=int)
        L[:, 0] = 1
        assert np.allclose(fast.fit(L).estimated_accuracies,
                           legacy.fit(L).estimated_accuracies, rtol=0.0, atol=1e-12)

    def test_accepts_sparse_label_matrix(self):
        from repro.storage.sparse import CSRMatrix

        L = self._random_matrix(3, n=40, m=3)
        rows = [
            {f"lf{j}": float(L[i, j]) for j in range(L.shape[1]) if L[i, j] != 0}
            for i in range(L.shape[0])
        ]
        # Column order must match: intern all LF names up front via a dense row.
        csr = CSRMatrix.from_rows(
            [{f"lf{j}": 0.0 for j in range(L.shape[1])}] + rows
        ).select_positions(range(1, L.shape[0] + 1))
        dense_model = LabelModel().fit(L)
        sparse_model = LabelModel().fit(csr)
        assert np.allclose(dense_model.estimated_accuracies,
                           sparse_model.estimated_accuracies)


class TestIndexedLabelingEquivalence:
    """LF application over the indexed and legacy traversal paths must yield
    the identical label matrix, and the end-to-end marginals must agree."""

    def test_label_matrix_identical_across_paths(
        self, electronics_dataset, electronics_candidates
    ):
        from repro.data_model.index import traversal_mode

        candidates, _ = electronics_candidates
        applier = LFApplier(electronics_dataset.labeling_functions)
        with traversal_mode(True):
            fast = applier.apply_dense(candidates)
        with traversal_mode(False):
            legacy = applier.apply_dense(candidates)
        assert np.array_equal(fast, legacy)

    def test_marginals_identical_across_paths(
        self, electronics_dataset, electronics_candidates
    ):
        from repro.data_model.index import traversal_mode

        candidates, _ = electronics_candidates
        applier = LFApplier(electronics_dataset.labeling_functions)
        with traversal_mode(True):
            L_fast = applier.apply_dense(candidates)
        with traversal_mode(False):
            L_legacy = applier.apply_dense(candidates)
        fast = LabelModel(LabelModelConfig(vectorized=True)).fit_predict_proba(L_fast)
        legacy = LabelModel(LabelModelConfig(vectorized=False)).fit_predict_proba(L_legacy)
        assert np.allclose(fast, legacy, rtol=0.0, atol=1e-9)
