"""Durability of the atomic-write paths (the fsync bugfix).

The old write-temp + ``os.replace`` idiom never fsynced, so a power loss
could leave a *visible but truncated* manifest or slab.  These tests pin the
fixed sequence — fsync(temp) → replace → fsync(dir) — and inject crashes at
every step to prove the previous complete file always survives.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.learning.trainer import TrainerCheckpoint
from repro.storage import atomic
from repro.storage.atomic import atomic_write, atomic_write_bytes, atomic_write_text
from repro.storage.shards import ShardStore
from repro.parsing.corpus import RawDocument


class EventRecorder:
    """Monkeypatch hook that records the durability-relevant syscall order."""

    def __init__(self, monkeypatch, tmp_path):
        self.events = []
        real_fsync = atomic.os.fsync
        real_replace = atomic.os.replace

        def recording_fsync(fd):
            self.events.append("fsync")
            return real_fsync(fd)

        def recording_replace(src, dst):
            self.events.append("replace")
            return real_replace(src, dst)

        monkeypatch.setattr(atomic.os, "fsync", recording_fsync)
        monkeypatch.setattr(atomic.os, "replace", recording_replace)


class TestAtomicWrite:
    def test_roundtrip_text_and_bytes(self, tmp_path):
        path = tmp_path / "payload.json"
        atomic_write_text(path, '{"a": 1}')
        assert json.loads(path.read_text()) == {"a": 1}
        atomic_write_bytes(path, b'{"a": 2}')
        assert json.loads(path.read_text()) == {"a": 2}
        # No temp litter once the write completed.
        assert list(tmp_path.iterdir()) == [path]

    def test_fsync_file_then_replace_then_fsync_dir(self, tmp_path, monkeypatch):
        recorder = EventRecorder(monkeypatch, tmp_path)
        atomic_write_text(tmp_path / "out.txt", "hello")
        # File fsync strictly before the rename; directory fsync after it.
        assert recorder.events == ["fsync", "replace", "fsync"]

    def test_writer_exception_leaves_target_untouched(self, tmp_path):
        path = tmp_path / "data.bin"
        atomic_write_bytes(path, b"complete-v1")
        with pytest.raises(RuntimeError):
            with atomic_write(path, "wb") as handle:
                handle.write(b"half-")
                raise RuntimeError("crash mid-write")
        assert path.read_bytes() == b"complete-v1"
        assert not (tmp_path / "data.bin.tmp").exists()

    def test_crash_in_fsync_before_replace_keeps_old_file(self, tmp_path, monkeypatch):
        path = tmp_path / "data.bin"
        atomic_write_bytes(path, b"complete-v1")

        def dying_fsync(fd):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(atomic.os, "fsync", dying_fsync)
        with pytest.raises(OSError):
            atomic_write_bytes(path, b"complete-v2")
        # The crash happened before the rename could make v2 visible.
        assert path.read_bytes() == b"complete-v1"

    def test_crash_in_replace_keeps_old_file(self, tmp_path, monkeypatch):
        path = tmp_path / "data.bin"
        atomic_write_bytes(path, b"complete-v1")

        def dying_replace(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(atomic.os, "replace", dying_replace)
        with pytest.raises(OSError):
            atomic_write_bytes(path, b"complete-v2")
        assert path.read_bytes() == b"complete-v1"


def _tiny_corpus(n=3):
    return [
        RawDocument(name=f"doc{i}", content=f"document {i} body", format="text")
        for i in range(n)
    ]


class TestCrashInjectionRegression:
    """The shared helper is actually wired into every persistent writer."""

    def test_manifest_crash_preserves_previous_manifest(self, tmp_path, monkeypatch):
        store = ShardStore(tmp_path, max_resident_shards=2)
        store.open_corpus(_tiny_corpus(3), shard_size=2)
        survivor = json.loads(store.manifest_path.read_text())

        def dying_replace(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(atomic.os, "replace", dying_replace)
        with pytest.raises(OSError):
            store.save_manifest()
        assert json.loads(store.manifest_path.read_text()) == survivor
        # A fresh store still reconciles against the intact manifest.
        monkeypatch.undo()
        reopened = ShardStore(tmp_path, max_resident_shards=2)
        assert [s.shard_id for s in reopened._load_manifest()] == [
            s["shard_id"] for s in survivor["shards"]
        ]

    def test_stage_records_crash_preserves_previous_records(
        self, tmp_path, monkeypatch
    ):
        store = ShardStore(tmp_path, max_resident_shards=2)
        shards = store.open_corpus(_tiny_corpus(2), shard_size=2)
        store.mark_stage(shards[0], "parse", "key-1")
        intact = store._stage_records_path(shards[0]).read_text()

        def dying_fsync(fd):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(atomic.os, "fsync", dying_fsync)
        with pytest.raises(OSError):
            store.mark_stage(shards[0], "parse", "key-2")
        assert store._stage_records_path(shards[0]).read_text() == intact
        monkeypatch.undo()
        assert store._load_stage_records(shards[0])["parse"]["key"] == "key-1"

    def test_slab_pickle_crash_preserves_previous_slab(self, tmp_path, monkeypatch):
        store = ShardStore(tmp_path, max_resident_shards=2)
        shards = store.open_corpus(_tiny_corpus(2), shard_size=2)
        store.write_docs(shards[0], ["v1"])
        path = store._shard_dir(shards[0]) / "docs.pkl"
        with open(path, "rb") as handle:
            assert pickle.load(handle) == ["v1"]

        def dying_replace(src, dst):
            raise OSError("simulated crash at rename")

        # Errno-less OSError: NOT transient, so atomic_write_bytes must not
        # retry it — the crash propagates and the previous slab survives.
        monkeypatch.setattr(atomic.os, "replace", dying_replace)
        with pytest.raises(OSError):
            store.write_docs(shards[0], ["v2"])
        monkeypatch.undo()
        store.evict_all()
        assert store.load_docs(shards[0]) == ["v1"]

    def test_trainer_checkpoint_is_durable_and_crash_safe(
        self, tmp_path, monkeypatch
    ):
        checkpoint = TrainerCheckpoint(tmp_path / "ckpt.pkl", key="k")
        recorder = EventRecorder(monkeypatch, tmp_path)
        checkpoint.save(epoch=0, model_state={"w": [1.0]}, complete=False, losses=[0.5])
        assert recorder.events == ["fsync", "replace", "fsync"]
        monkeypatch.undo()

        def dying_replace(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(atomic.os, "replace", dying_replace)
        with pytest.raises(OSError):
            checkpoint.save(
                epoch=1, model_state={"w": [9.9]}, complete=True, losses=[0.5, 0.1]
            )
        monkeypatch.undo()
        payload = checkpoint.load()
        assert payload is not None and payload["epoch"] == 0
        assert payload["model_state"] == {"w": [1.0]}


class TestFaultPlanHooks:
    """Seeded fault injection inside atomic_write's durability window.

    The hook sits between the temp-file fsync and the rename: corruption
    written there is published by the rename (modelling the disk misbehaving
    after the kernel reported success), which is exactly the window the
    read-side checksums exist to cover.
    """

    def test_torn_write_publishes_truncated_file_exactly_once(self, tmp_path):
        from repro.testing.faults import FaultPlan, FaultSpec, activate

        plan = FaultPlan(
            [FaultSpec("torn_write", match="slab.bin")], tmp_path / "faults", seed=1
        )
        target = tmp_path / "slab.bin"
        with activate(plan):
            atomic_write_bytes(target, b"x" * 100)
            # The tear went through the *rename*: visible, truncated, durable.
            assert target.read_bytes() == b"x" * 50
            assert plan.fired("torn_write") == 1
            # times=1 exhausted: the next write of the same file is intact.
            atomic_write_bytes(target, b"y" * 100)
            assert target.read_bytes() == b"y" * 100
        assert plan.fired() == 1

    def test_bit_flip_is_seed_deterministic(self, tmp_path):
        from repro.testing.faults import FaultPlan, FaultSpec, activate

        payload = bytes(range(100))
        outputs = []
        for run in ("a", "b"):
            target = tmp_path / run / "slab.bin"
            target.parent.mkdir()
            plan = FaultPlan(
                [FaultSpec("bit_flip", match="slab.bin")],
                tmp_path / f"faults-{run}",
                seed=42,
            )
            with activate(plan):
                atomic_write_bytes(target, payload)
            outputs.append(target.read_bytes())
        # Same seed → same flipped byte (the chaos suite depends on this to
        # reproduce a failure from its seed alone).
        assert outputs[0] == outputs[1]
        diffs = [a ^ b for a, b in zip(outputs[0], payload) if a != b]
        assert diffs == [0x40]

    def test_transient_io_error_is_retried_to_success(self, tmp_path):
        import errno

        from repro.storage.atomic import clear_retry_events, retry_events
        from repro.testing.faults import FaultPlan, FaultSpec, activate

        clear_retry_events()
        plan = FaultPlan(
            [FaultSpec("io_error", match="slab.bin", error_errno=errno.ENOSPC)],
            tmp_path / "faults",
            seed=2,
        )
        target = tmp_path / "slab.bin"
        with activate(plan):
            atomic_write_bytes(target, b"payload")
        # First attempt failed (and left no target), the retry succeeded.
        assert target.read_bytes() == b"payload"
        assert plan.fired("io_error") == 1
        assert any(event["errno"] == errno.ENOSPC for event in retry_events())
        assert not list(tmp_path.glob("*.tmp"))

    def test_unmatched_paths_pass_through_unharmed(self, tmp_path):
        from repro.testing.faults import FaultPlan, FaultSpec, activate

        plan = FaultPlan(
            [FaultSpec("torn_write", match="other.bin")], tmp_path / "faults", seed=3
        )
        target = tmp_path / "slab.bin"
        with activate(plan):
            atomic_write_bytes(target, b"payload")
        assert target.read_bytes() == b"payload"
        assert plan.fired() == 0

    def test_skip_arms_the_nth_matching_write(self, tmp_path):
        from repro.testing.faults import FaultPlan, FaultSpec, activate

        plan = FaultPlan(
            [FaultSpec("torn_write", match="slab.bin", skip=2)],
            tmp_path / "faults",
            seed=4,
        )
        target = tmp_path / "slab.bin"
        with activate(plan):
            for payload in (b"a" * 10, b"b" * 10):
                atomic_write_bytes(target, payload)
                assert target.read_bytes() == payload
            atomic_write_bytes(target, b"c" * 10)
            assert target.read_bytes() == b"c" * 5
        assert plan.fired() == 1

    def test_no_active_plan_is_zero_cost_passthrough(self, tmp_path):
        from repro.testing.faults import active_plan

        assert active_plan() is None
        target = tmp_path / "slab.bin"
        atomic_write_bytes(target, b"payload")
        assert target.read_bytes() == b"payload"
