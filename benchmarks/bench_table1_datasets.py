"""Table 1 — summary of the datasets used in the evaluation.

Paper row format: dataset, size, #docs, #rels, format.  Our corpora are
synthetic and scaled down, so the row reports size in characters, document
count, number of gold relation entries and format.
"""

from common import DOMAINS, dataset_for, format_table, once, report


def test_table1_dataset_summary(benchmark):
    def build_rows():
        rows = []
        for domain in DOMAINS:
            summary = dataset_for(domain).summary()
            rows.append(
                (
                    summary["dataset"],
                    summary["size_chars"],
                    summary["n_docs"],
                    summary["n_gold_entries"],
                    summary["format"],
                )
            )
        return rows

    rows = once(benchmark, build_rows)
    report(
        "table1_datasets",
        format_table(
            "Table 1 — dataset summary (synthetic, scaled down)",
            ["Dataset", "Size (chars)", "#Docs", "#Gold entries", "Format"],
            rows,
        ),
    )
    assert len(rows) == 4
