"""Figure 6 — average F1 as the candidate context scope widens (ELECTRONICS).

The paper limits candidates to sentence, table, page and document scope and
shows quality rising monotonically, with document scope 12.8x better than
sentence scope and 2.6x better than table scope.  The same sweep is run here
via the ``context_scope`` knob of the extractor.
"""

from repro.candidates.extractor import ContextScope
from repro.pipeline.config import FonduerConfig

from common import dataset_for, format_table, once, report, run_fonduer

_SCOPES = (
    ContextScope.SENTENCE,
    ContextScope.TABLE,
    ContextScope.PAGE,
    ContextScope.DOCUMENT,
)


def test_fig6_context_scope(benchmark):
    dataset = dataset_for("electronics")

    def run():
        scores = {}
        for scope in _SCOPES:
            result = run_fonduer(dataset, FonduerConfig(context_scope=scope))
            scores[scope.value] = result.metrics.f1
        return scores

    scores = once(benchmark, run)
    report(
        "fig6_context_scope",
        format_table(
            "Figure 6 — F1 vs candidate context scope (ELECTRONICS)",
            ["Context scope", "F1"],
            [(scope.value, scores[scope.value]) for scope in _SCOPES],
        ),
    )
    # Shape: quality grows as the scope widens; document >> sentence.
    assert scores["document"] >= scores["page"] >= scores["table"]
    assert scores["document"] > scores["sentence"]
