"""Appendix C.2 — sparse-matrix representations for Features and Labels.

The paper compares list-of-lists (LIL) and coordinate-list (COO) physical
representations under the pipeline's access patterns: Features are materialized
once and queried row-by-row many times (LIL wins); Labels are updated every
time a labeling function changes during development (COO wins).  The benchmark
measures exactly those two access patterns.
"""

import time

from repro.storage.sparse import COOMatrix, LILMatrix

from common import format_table, once, report

_N_ROWS = 2000
_N_FEATURES_PER_ROW = 60
_N_QUERY_PASSES = 5
_N_LFS = 12
_N_UPDATE_PASSES = 6


def _populate_features(matrix):
    for row in range(_N_ROWS):
        for feature_index in range(_N_FEATURES_PER_ROW):
            matrix.set(row, f"feature_{(row * 7 + feature_index) % 500}", 1.0)
    return matrix


def _query_all_rows(matrix):
    total = 0
    for _ in range(_N_QUERY_PASSES):
        for row in range(_N_ROWS):
            total += len(matrix.get_row(row))
    return total


def _apply_label_updates(matrix):
    # Each pass simulates editing one labeling function: its column is rewritten
    # for every candidate it labels.
    for pass_index in range(_N_UPDATE_PASSES):
        lf_name = f"lf_{pass_index % _N_LFS}"
        for row in range(0, _N_ROWS, 2):
            matrix.set(row, lf_name, 1.0 if (row + pass_index) % 3 else -1.0)


def test_appc2_features_query_lil_vs_coo(benchmark):
    def run():
        timings = {}
        for name, cls in (("LIL", LILMatrix), ("COO", COOMatrix)):
            matrix = _populate_features(cls())
            start = time.perf_counter()
            _query_all_rows(matrix)
            timings[name] = time.perf_counter() - start
        return timings

    timings = once(benchmark, run)
    report(
        "appc2_features_query",
        format_table(
            "Appendix C.2 — Features access (row queries): LIL vs COO",
            ["Representation", "Query time (s)", "Relative"],
            [
                ("LIL", timings["LIL"], 1.0),
                ("COO", timings["COO"], timings["COO"] / timings["LIL"]),
            ],
        ),
    )
    # LIL must be the faster representation for row-oriented feature queries.
    assert timings["LIL"] < timings["COO"]


def test_appc2_labels_update_coo_vs_lil(benchmark):
    def run():
        timings = {}
        for name, cls in (("LIL", LILMatrix), ("COO", COOMatrix)):
            matrix = cls()
            # Pre-populate with the existing LF output, as during development.
            for row in range(_N_ROWS):
                for lf_index in range(_N_LFS):
                    if (row + lf_index) % 4 == 0:
                        matrix.set(row, f"lf_{lf_index}", 1.0)
            start = time.perf_counter()
            _apply_label_updates(matrix)
            timings[name] = time.perf_counter() - start
        return timings

    timings = once(benchmark, run)
    report(
        "appc2_labels_update",
        format_table(
            "Appendix C.2 — Labels access (iterative LF updates): COO vs LIL",
            ["Representation", "Update time (s)", "Relative"],
            [
                ("COO", timings["COO"], 1.0),
                ("LIL", timings["LIL"], timings["LIL"] / timings["COO"]),
            ],
        ),
    )
    # COO must be the faster representation for update-heavy label development.
    assert timings["COO"] < timings["LIL"]
