"""Engine scaling — docs/sec of the document-parallel phases vs worker count.

The parse → candidates → featurize phases are embarrassingly parallel at
document granularity, so the engine's ProcessExecutor should scale their
throughput with the worker count (up to the machine's core count).  This
benchmark runs the three stages as one engine DAG over the ELECTRONICS corpus
with the serial executor and with process pools of 1, 2 and 4 workers,
reports docs/sec for each, and verifies that every configuration produces
identical candidates and features (executor choice is a pure throughput knob).

The expected shape: ≥ 2× docs/sec over serial at 4 workers on a ≥ 4-core
machine; on fewer cores the speed-up degrades gracefully toward 1× (the
speed-up assertion is gated on the available core count).
"""

import os
import time

from repro.datasets import load_dataset
from repro.engine import (
    CandidateOp,
    FeaturizeOp,
    IncrementalCache,
    ParseOp,
    PipelineEngine,
    ProcessExecutor,
    SerialExecutor,
    Stage,
)
from repro.candidates.extractor import CandidateExtractor
from repro.features.featurizer import Featurizer

from common import format_table, matchers_of, once, report

N_DOCS = 24
WORKER_COUNTS = (1, 2, 4)


def _build_engine(dataset, executor):
    extractor = CandidateExtractor(
        dataset.schema.name, matchers_of(dataset), throttlers=dataset.throttlers
    )
    stages = [
        Stage(ParseOp()),
        Stage(CandidateOp(extractor), upstream="parse"),
        Stage(FeaturizeOp(Featurizer()), upstream="candidates"),
    ]
    # Incremental caching off: this measures raw stage throughput, not cache hits.
    return PipelineEngine(stages, executor=executor, cache=IncrementalCache(enabled=False))


def _run_stages(dataset, executor):
    raws = dataset.corpus.raw_documents
    engine = _build_engine(dataset, executor)
    start = time.perf_counter()
    # Unit keys are positional: with the cache disabled they are never reused,
    # so content hashing would only distort the throughput measurement.
    outputs = engine.run(raws, unit_keys=[f"doc:{i}" for i in range(len(raws))])
    seconds = time.perf_counter() - start
    signature = (
        [
            tuple(m.normalized() for m in candidate.mentions)
            for result in outputs["candidates"].results
            for candidate in result.candidates
        ],
        [row for doc_rows in outputs["featurize"].results for row in doc_rows],
    )
    return seconds, signature


def test_engine_scaling(benchmark):
    dataset = load_dataset("electronics", n_docs=N_DOCS, seed=42)

    def run():
        measurements = []
        serial_seconds, serial_signature = _run_stages(dataset, SerialExecutor())
        measurements.append(("serial", 1, serial_seconds))
        for n_workers in WORKER_COUNTS:
            seconds, signature = _run_stages(
                dataset, ProcessExecutor(n_workers=n_workers)
            )
            assert signature == serial_signature, (
                f"process executor with {n_workers} workers diverged from serial"
            )
            measurements.append(("process", n_workers, seconds))
        return measurements

    measurements = once(benchmark, run)
    serial_seconds = measurements[0][2]
    rows = []
    for executor_name, n_workers, seconds in measurements:
        rows.append(
            (
                executor_name,
                n_workers,
                round(N_DOCS / seconds, 2),
                round(serial_seconds / seconds, 2),
            )
        )
    report(
        "engine_scaling",
        format_table(
            f"Engine scaling — parse+candidates+featurize on ELECTRONICS ({N_DOCS} docs, "
            f"{os.cpu_count()} cores available)",
            ["Executor", "Workers", "Docs/sec", "Speed-up vs serial"],
            rows,
        ),
    )
    for _, _, docs_per_sec, _ in rows:
        assert docs_per_sec > 0
    if (os.cpu_count() or 1) >= 4:
        four_worker_speedup = rows[-1][3]
        assert four_worker_speedup >= 2.0, (
            f"expected >= 2x docs/sec at 4 workers on a {os.cpu_count()}-core "
            f"machine, measured {four_worker_speedup}x"
        )
