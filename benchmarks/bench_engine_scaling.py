"""Engine scaling — shard-stage throughput of the three execution strategies.

The streaming stages (parse → candidates → featurize → label) are
embarrassingly parallel at shard granularity.  This benchmark runs them over
a sharded ELECTRONICS corpus three ways, apples-to-apples (every mode reads
raw slabs from a fresh :class:`~repro.storage.shards.ShardStore` and writes
its output slabs back):

- **serial** — the in-order shard loop, one stage at a time (the streaming
  baseline).
- **process** — the legacy fork-per-map ``ProcessExecutor``: every stage map
  forks a fresh pool of workers and collects results over pipes.
- **pool** — the persistent fork-once worker pool
  (:class:`~repro.engine.pool.PersistentWorkerPool`): workers survive across
  stages and waves, exchange only ``(shard, stages)`` control messages, and
  write slabs themselves (zero-copy handoff; featurize+label fused per the
  streaming wave plan).

Every configuration must produce byte-identical candidate/feature/label
slabs; docs/sec is the only thing allowed to differ.  Worker counts are
capped at ``os.cpu_count()`` — speed-up assertions only apply where the
machine actually has the cores.

Run standalone (CI runs ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_engine_scaling.py [--smoke] [--n-docs N]

Writes ``results/engine_scaling.md`` and machine-readable
``results/BENCH_engine_scaling.json``.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.candidates.extractor import CandidateExtractor
from repro.datasets import load_dataset
from repro.engine import (
    CandidateOp,
    FeaturizeOp,
    LabelOp,
    LatencyAutotuner,
    ParseOp,
    PersistentWorkerPool,
    ProcessExecutor,
)
from repro.features.featurizer import Featurizer
from repro.pipeline.fonduer import _STREAMING_WAVES, _ShardStageWorker
from repro.storage.shards import ShardStore

from common import format_table, matchers_of

RESULTS_DIR = Path(__file__).parent / "results"

SHARD_SIZE = 4
WORKER_COUNTS = (1, 2, 4)
STAGES = ("parse", "candidates", "featurize", "label")


def _operators(dataset) -> dict:
    extractor = CandidateExtractor(
        dataset.schema.name, matchers_of(dataset), throttlers=dataset.throttlers
    )
    return {
        "parse": ParseOp(),
        "candidates": CandidateOp(extractor),
        "featurize": FeaturizeOp(Featurizer()),
        "label": LabelOp(dataset.labeling_functions, use_index=True),
    }


def _fresh_store(dataset, workdir: str):
    store = ShardStore(workdir, max_resident_shards=2)
    shards = store.open_corpus(dataset.corpus.raw_documents, SHARD_SIZE)
    return store, shards


def _signature(store: ShardStore, shards) -> tuple:
    """Byte-level fingerprint of every output slab, in shard order."""
    per_shard = []
    for shard in shards:
        candidates = tuple(
            tuple(mention.normalized() for mention in candidate.mentions)
            for extraction in store.load_candidates(shard)
            for candidate in extraction.candidates
        )
        slab = store.load_feature_slab(shard)
        labels = store.load_label_slab(shard)
        per_shard.append(
            (
                candidates,
                slab.indptr.tobytes(),
                slab.indices.tobytes(),
                slab.data.tobytes(),
                tuple(slab.columns),
                labels.tobytes(),
            )
        )
    return tuple(per_shard)


def _run_serial(dataset, workdir: str) -> tuple:
    """The streaming baseline: stage-major in-order loop, one process."""
    store, shards = _fresh_store(dataset, workdir)
    worker = _ShardStageWorker(store, shards, _operators(dataset))
    start = time.perf_counter()
    for stage in STAGES:
        for position in range(len(shards)):
            worker._run_entry(position, (stage,))
    seconds = time.perf_counter() - start
    return seconds, _signature(store, shards)


def _run_fork_per_map(dataset, workdir: str, n_workers: int) -> tuple:
    """The legacy strategy: each stage map forks a fresh worker pool."""
    store, shards = _fresh_store(dataset, workdir)
    worker = _ShardStageWorker(store, shards, _operators(dataset))
    executor = ProcessExecutor(n_workers=n_workers, chunk_size=1)
    positions = list(range(len(shards)))
    start = time.perf_counter()
    for stage in STAGES:
        executor.map(lambda position: worker._run_entry(position, (stage,)), positions)
    seconds = time.perf_counter() - start
    return seconds, _signature(store, shards)


def _run_pool(dataset, workdir: str, n_workers: int) -> tuple:
    """The persistent pool: fork once, stream fused waves through it."""
    store, shards = _fresh_store(dataset, workdir)
    worker = _ShardStageWorker(store, shards, _operators(dataset))
    positions = list(range(len(shards)))
    tuner = LatencyAutotuner(target_seconds=0.5, max_chunk=4)
    start = time.perf_counter()
    with PersistentWorkerPool(worker, n_workers=n_workers, autotuner=tuner) as pool:
        for stages in _STREAMING_WAVES:
            pool.run(
                [(position, stages) for position in positions], affinity=positions
            )
    seconds = time.perf_counter() - start
    return seconds, _signature(store, shards)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast functional run for CI (small corpus, no timing assertions)",
    )
    parser.add_argument("--n-docs", type=int, default=None)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    if "fork" not in multiprocessing.get_all_start_methods():
        print("SKIP: host platform is spawn-only; the fork pool cannot run")
        return 0

    n_docs = args.n_docs if args.n_docs is not None else (16 if args.smoke else 48)
    cpu_count = os.cpu_count() or 1
    worker_counts = [n for n in WORKER_COUNTS if n <= cpu_count] or [1]

    print(
        f"Engine scaling: ELECTRONICS {n_docs} docs, shard_size={SHARD_SIZE} "
        f"({(n_docs + SHARD_SIZE - 1) // SHARD_SIZE} shards), "
        f"{cpu_count} cores -> worker counts {worker_counts}"
    )
    dataset = load_dataset("electronics", n_docs=n_docs, seed=args.seed)

    def timed(label, runner, *runner_args):
        workdir = tempfile.mkdtemp(prefix="bench-engine-")
        try:
            seconds, signature = runner(dataset, workdir, *runner_args)
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        print(f"  {label:>12}: {seconds:.2f}s ({n_docs / seconds:.1f} docs/s)")
        return seconds, signature

    serial_seconds, serial_signature = timed("serial", _run_serial)
    rows = [("serial", 1, serial_seconds)]
    for n_workers in worker_counts:
        seconds, signature = timed(
            f"process@{n_workers}", _run_fork_per_map, n_workers
        )
        assert signature == serial_signature, (
            f"fork-per-map with {n_workers} workers diverged from serial"
        )
        rows.append(("process", n_workers, seconds))
    pool_speedups = {}
    for n_workers in worker_counts:
        seconds, signature = timed(f"pool@{n_workers}", _run_pool, n_workers)
        assert signature == serial_signature, (
            f"persistent pool with {n_workers} workers diverged from serial"
        )
        rows.append(("pool", n_workers, seconds))
        pool_speedups[n_workers] = serial_seconds / seconds

    table_rows = [
        (
            mode,
            n_workers,
            round(n_docs / seconds, 2),
            round(serial_seconds / seconds, 2),
        )
        for mode, n_workers, seconds in rows
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    markdown = format_table(
        f"Engine scaling — parse+candidates+featurize+label over shard slabs "
        f"(ELECTRONICS, {n_docs} docs, {cpu_count} cores"
        + (", smoke" if args.smoke else "")
        + ")",
        ["Mode", "Workers", "Docs/sec", "Speed-up vs serial"],
        table_rows,
    )
    (RESULTS_DIR / "engine_scaling.md").write_text(markdown)
    print("\n" + markdown)

    payload = {
        "benchmark": "engine_scaling",
        "smoke": args.smoke,
        "cpu_count": cpu_count,
        "n_docs": n_docs,
        "shard_size": SHARD_SIZE,
        "seed": args.seed,
        "stages": list(STAGES),
        "rows": [
            {
                "mode": mode,
                "workers": n_workers,
                "seconds": round(seconds, 4),
                "docs_per_sec": round(n_docs / seconds, 3),
                "speedup_vs_serial": round(serial_seconds / seconds, 3),
            }
            for mode, n_workers, seconds in rows
        ],
        "equivalent_outputs": True,
    }
    json_path = RESULTS_DIR / "BENCH_engine_scaling.json"
    json_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"Wrote {json_path}")

    if args.smoke:
        return 0

    # Acceptance gates, each applied only where the machine can express it.
    failures = []
    if pool_speedups.get(1, 0.0) < 0.95:
        failures.append(
            f"pool@1 must hold >= 0.95x serial throughput, measured "
            f"{pool_speedups[1]:.2f}x"
        )
    for n_workers in (2, 4):
        if cpu_count >= n_workers and n_workers in pool_speedups:
            required = 0.7 * n_workers
            if pool_speedups[n_workers] < required:
                failures.append(
                    f"pool@{n_workers} speed-up {pool_speedups[n_workers]:.2f}x "
                    f"below the {required:.1f}x floor on a {cpu_count}-core machine"
                )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
