"""Figure 4 — quality and speed-up as throttlers prune more candidates.

The paper sweeps the fraction of candidates filtered by throttlers and shows
(a) that pruning negative candidates first improves precision (and thus F1) up
to a point, after which recall losses dominate; and (b) that classification
time falls roughly linearly with the number of surviving candidates.

The sweep here composes the domain throttler with a hash-based filter of
increasing aggressiveness, so the filtered fraction rises from 0% towards
100%; the hash filter never drops candidates the accurate domain throttler
would keep until the aggressiveness exceeds that throttler's own ratio.
"""

import time

from repro.candidates.extractor import CandidateExtractor
from repro.evaluation.metrics import evaluate_entity_tuples
from repro.features.featurizer import Featurizer
from repro.learning.logistic import SparseLogisticRegression
from repro.supervision.label_model import LabelModel
from repro.supervision.labeling import LFApplier

from common import dataset_for, format_table, matchers_of, once, report

_FILTER_LEVELS = (0.0, 0.25, 0.5, 0.75, 0.9, 0.99)


def _run_with_filter(dataset, keep_fraction):
    """Run candidate generation + classification keeping ~keep_fraction of candidates."""
    def hash_throttler(candidate):
        bucket = (hash(candidate.entity_tuple) % 1000) / 1000.0
        return bucket < keep_fraction

    throttlers = list(dataset.throttlers) + ([hash_throttler] if keep_fraction < 1.0 else [])
    extractor = CandidateExtractor(
        dataset.schema.name, matchers_of(dataset), throttlers=throttlers
    )
    start = time.perf_counter()
    extraction = extractor.extract(dataset.parse_documents())
    candidates = extraction.candidates
    if not candidates:
        metrics = evaluate_entity_tuples(set(), dataset.gold_entries)
        return metrics, time.perf_counter() - start, 1.0
    featurizer = Featurizer()
    rows = [{f: 1.0 for f in featurizer.features_for_candidate(c)} for c in candidates]
    L = LFApplier(dataset.labeling_functions).apply_dense(candidates)
    marginals = LabelModel().fit_predict_proba(L)
    model = SparseLogisticRegression().fit(rows, marginals)
    predictions = model.predict_proba(rows)
    extracted = {
        (c.document.name, c.entity_tuple)
        for c, p in zip(candidates, predictions)
        if p > 0.5
    }
    elapsed = time.perf_counter() - start
    metrics = evaluate_entity_tuples(extracted, dataset.gold_entries)
    filtered_ratio = 1.0 - len(candidates) / max(1, extraction.n_raw_candidates)
    return metrics, elapsed, filtered_ratio


def test_fig4_throttler_tradeoff(benchmark):
    dataset = dataset_for("electronics")

    def run():
        series = []
        for filter_level in _FILTER_LEVELS:
            metrics, elapsed, filtered_ratio = _run_with_filter(dataset, 1.0 - filter_level)
            series.append((filter_level, filtered_ratio, metrics, elapsed))
        return series

    series = once(benchmark, run)
    baseline_time = series[0][3]
    rows = []
    for requested, filtered_ratio, metrics, elapsed in series:
        speed_up = baseline_time / elapsed if elapsed > 0 else float("inf")
        rows.append(
            (
                f"{int(requested * 100)}%",
                filtered_ratio,
                metrics.precision if metrics else 0.0,
                metrics.recall if metrics else 0.0,
                metrics.f1 if metrics else 0.0,
                speed_up,
            )
        )
    report(
        "fig4_throttlers",
        format_table(
            "Figure 4 — throttling: quality and speed-up vs % candidates filtered (ELECTRONICS)",
            ["Requested filter", "Actual filtered ratio", "Prec.", "Rec.", "F1", "Speed-up"],
            rows,
        ),
    )

    # Shape: heavy over-throttling hurts recall, and pruning speeds things up.
    f1_moderate = max(row[4] for row in rows[:3])
    f1_extreme = rows[-1][4]
    assert f1_extreme <= f1_moderate
    assert rows[-1][5] >= rows[0][5]
