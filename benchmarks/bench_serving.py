"""Serving-tier benchmark: saturation curve, baseline speedup, churn reads.

Exercises the claims of the high-concurrency serving tier (docs/SERVING.md):

1. **Saturation curve** — the event-loop server (keep-alive ``/v1`` API via
   :class:`~repro.kb.client.KBClient`, mmap segment arenas, response cache,
   multi-process workers) under 1..64 concurrent clients: aggregate q/s and
   p50/p99 per point.  The claim is throughput that *scales* to 64 clients
   with p99 staying flat, not collapsing.
2. **Baseline speedup** — the same workload against an embedded
   thread-per-request server (the architecture this tier replaced: one
   thread and one TCP connection per request, no cache).  Full mode asserts
   the new tier clears **4x** the baseline's best throughput.
3. **Snapshot-consistent reads under republication** — reader threads hammer
   the store while a writer republishes generation after generation; every
   response must be internally consistent (one generation per response —
   verified, not assumed).

Run standalone (CI runs ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]

Results land in ``benchmarks/results/serving.md`` plus machine-readable
``results/BENCH_serving.json`` for the merged benchmarks artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qsl, urlencode

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.kb.client import KBClient
from repro.kb.query import KBQuery
from repro.kb.server import create_server
from repro.kb.store import KBStore

RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_PATH = RESULTS_DIR / "serving.md"

RELATIONS = ("has_current", "has_voltage", "has_polarity")

#: The saturation curve's concurrency points.
CLIENT_COUNTS = (1, 4, 16, 64)


def build_store(root: Path, n_tuples: int, n_segments: int, generation: int = 0) -> KBStore:
    """Publish a synthetic KB: ``n_tuples`` across ``n_segments`` shards."""
    rng = np.random.default_rng([7, generation])
    store = KBStore(root)
    update = store.begin_update()
    per_segment = max(1, n_tuples // n_segments)
    candidate = 0
    for position in range(n_segments):
        rows = []
        for _ in range(per_segment):
            doc = f"doc_{candidate % 97:04d}"
            rows.append(
                {
                    "relation": RELATIONS[candidate % len(RELATIONS)],
                    "doc_name": doc,
                    "doc_path": f"docs/{doc}.html",
                    "entities": [f"part-{candidate % 211:03x}", str(candidate % 500)],
                    "spans": [
                        ["part", f"sent:{candidate % 40}:0-1", f"part-{candidate % 211:03x}"]
                    ],
                    "marginal": float(round(0.5 + rng.random() / 2, 6)),
                    "candidate": candidate,
                }
            )
            candidate += 1
        update.upsert(position, f"shard-{position}", f"g{generation}-{position}", rows)
    update.publish(meta={"generation": generation})
    return store


def query_mix(i: int) -> KBQuery:
    """A deterministic rotation over the filter types the API serves.

    Cursor-era mix: no offsets (``/v1`` rejects them), and enough distinct
    queries (~350) that the response cache is exercised at a realistic reuse
    rate rather than one hot entry.
    """
    kind = i % 4
    if kind == 0:
        return KBQuery(relation=RELATIONS[i % len(RELATIONS)], limit=20)
    if kind == 1:
        return KBQuery(doc=f"doc_{i % 97:04d}", limit=20)
    if kind == 2:
        return KBQuery(entity=f"part-{i % 211:03x}", limit=20)
    return KBQuery(min_marginal=0.9, limit=20 + (i * 13) % 30)


def percentile(latencies, q):
    return float(np.percentile(np.asarray(latencies), q) * 1000.0)


def _run_clients(client_ids, n_clients: int, n_queries: int, run_client):
    """Thread-per-client execution of one process's share of the fan-out."""
    latencies: list = []
    errors: list = []
    lock = threading.Lock()

    def worker(client_index: int) -> None:
        local: list = []
        try:
            run_client(client_index, range(client_index, n_queries, n_clients), local)
        except Exception as error:  # a dead client must fail the bench
            with lock:
                errors.append(f"{type(error).__name__}: {error}")
        with lock:
            latencies.extend(local)

    threads = [threading.Thread(target=worker, args=(t,)) for t in client_ids]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies, errors


def _fan_out(n_clients: int, n_queries: int, run_client) -> dict:
    """Fan ``n_clients`` concurrent clients over ``n_queries`` requests.

    On multi-core hosts the clients are spread across forked processes so
    the *measurement* side never GIL-throttles the server being measured —
    64 client threads in one interpreter cap out near 4k q/s of response
    parsing regardless of how fast the server answers.
    """
    n_processes = min(4, os.cpu_count() or 1, n_clients)
    begin = time.perf_counter()
    if n_processes <= 1 or not hasattr(os, "fork"):
        latencies, errors = _run_clients(
            range(n_clients), n_clients, n_queries, run_client
        )
    else:
        latencies, errors = [], []
        children = []
        for rank in range(n_processes):
            read_fd, write_fd = os.pipe()
            pid = os.fork()
            if pid == 0:
                status = 1
                try:
                    os.close(read_fd)
                    local, local_errors = _run_clients(
                        range(rank, n_clients, n_processes),
                        n_clients,
                        n_queries,
                        run_client,
                    )
                    with os.fdopen(write_fd, "w") as sink:
                        json.dump(
                            {
                                "latencies": [round(l, 6) for l in local],
                                "errors": local_errors,
                            },
                            sink,
                        )
                    status = 0
                finally:
                    os._exit(status)
            os.close(write_fd)
            children.append((pid, read_fd))
        for pid, read_fd in children:
            with os.fdopen(read_fd, "r") as source:
                payload = json.load(source)
            latencies.extend(payload["latencies"])
            errors.extend(payload["errors"])
            os.waitpid(pid, 0)
    elapsed = time.perf_counter() - begin
    if errors:
        raise AssertionError(f"{len(errors)} client failures, e.g. {errors[0]}")
    return {
        "clients": n_clients,
        "qps": len(latencies) / elapsed,
        "p50_ms": percentile(latencies, 50),
        "p99_ms": percentile(latencies, 99),
    }


def bench_in_process(store: KBStore, n_queries: int, n_threads: int) -> dict:
    def run_client(_: int, indices, local: list) -> None:
        for i in indices:
            begin = time.perf_counter()
            result = store.snapshot().query(query_mix(i))
            local.append(time.perf_counter() - begin)
            assert result.total >= 0

    return _fan_out(n_threads, n_queries, run_client)


# --------------------------------------------------------------------------
# Baseline: the thread-per-request architecture this tier replaced — one
# dispatcher thread per request, one TCP connection per request, no cache.
# --------------------------------------------------------------------------
class _BaselineHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.0"

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        _, _, query_string = self.path.partition("?")
        try:
            query = KBQuery.from_params(dict(parse_qsl(query_string)))
            result = self.server.store.snapshot().query(query)  # type: ignore[attr-defined]
            status, body = 200, json.dumps(result.to_json()).encode("utf-8")
        except ValueError as error:
            status, body = 400, json.dumps({"error": str(error)}).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *_args) -> None:
        pass


def bench_http_baseline(store: KBStore, n_queries: int, n_clients: int) -> dict:
    server = ThreadingHTTPServer(("127.0.0.1", 0), _BaselineHandler)
    server.daemon_threads = True
    server.store = store  # type: ignore[attr-defined]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]

    def run_client(_: int, indices, local: list) -> None:
        for i in indices:
            params = urlencode(query_mix(i).to_params())
            url = f"http://{host}:{port}/query?{params}"
            begin = time.perf_counter()
            with urllib.request.urlopen(url, timeout=30) as response:
                payload = json.loads(response.read().decode("utf-8"))
            local.append(time.perf_counter() - begin)
            assert payload["total"] >= 0

    try:
        return _fan_out(n_clients, n_queries, run_client)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def bench_http_v1(server_url: str, n_queries: int, n_clients: int) -> dict:
    """The new tier: each client holds one keep-alive KBClient connection."""

    def run_client(_: int, indices, local: list) -> None:
        with KBClient(server_url, timeout=30) as client:
            for i in indices:
                begin = time.perf_counter()
                result = client.query(query_mix(i))
                local.append(time.perf_counter() - begin)
                assert result.total >= 0

    return _fan_out(n_clients, n_queries, run_client)


def bench_reads_under_upserts(
    root: Path, n_tuples: int, n_segments: int, n_generations: int, n_threads: int
) -> dict:
    """Readers race a republishing writer; consistency is asserted per read."""
    store = KBStore(root)
    reads = {"count": 0}
    violations = []
    lock = threading.Lock()
    done = threading.Event()

    def reader() -> None:
        count = 0
        try:
            while not done.is_set():
                snapshot = store.snapshot()
                result = snapshot.query(KBQuery(limit=200))
                generations = {
                    # Generation g publishes keys "g<g>-<position>".
                    record["key"].split("-")[0]
                    for record in snapshot.records
                }
                if len(generations) > 1:
                    with lock:
                        violations.append(f"mixed generations {generations}")
                if result.total != snapshot.n_tuples:
                    with lock:
                        violations.append("total != snapshot tuple count")
                count += 1
        except Exception as error:  # a dead reader must fail the bench, not
            with lock:  # silently vacate the consistency assertion
                violations.append(f"reader crashed: {type(error).__name__}: {error}")
        finally:
            with lock:
                reads["count"] += count

    threads = [threading.Thread(target=reader) for _ in range(n_threads)]
    begin = time.perf_counter()
    for thread in threads:
        thread.start()
    for generation in range(1, n_generations + 1):
        build_store(root, n_tuples, n_segments, generation=generation)
    elapsed = time.perf_counter() - begin
    done.set()
    for thread in threads:
        thread.join()
    if violations:
        raise AssertionError(
            f"{len(violations)} consistency violations, e.g. {violations[0]}"
        )
    return {
        "reads": reads["count"],
        "reader_qps": reads["count"] / elapsed,
        "publishes": n_generations,
        "publishes_per_sec": n_generations / elapsed,
    }


def write_results(report: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    scale = report["scale"]
    baseline_by_clients = {row["clients"]: row for row in report["baseline_curve"]}
    lines = [
        "# KB serving benchmark (`bench_serving.py`)",
        "",
        f"Store: {scale['n_tuples']} tuples across {scale['n_segments']} segments"
        f" ({'smoke' if scale['smoke'] else 'full'} mode); "
        f"{scale['workers']} serving worker(s).",
        "",
        "## HTTP saturation curve",
        "",
        "`/v1` = event-loop tier (keep-alive KBClient, mmap arenas, response",
        "cache); `baseline` = the replaced thread-per-request server (one TCP",
        "connection and dispatch thread per request).",
        "",
        "| clients | /v1 q/s | /v1 p50 ms | /v1 p99 ms | baseline q/s | baseline p99 ms |",
        "|---|---|---|---|---|---|",
    ]
    for row in report["v1_curve"]:
        baseline = baseline_by_clients.get(row["clients"])
        baseline_cells = (
            f"{baseline['qps']:.0f} | {baseline['p99_ms']:.2f}" if baseline else "— | —"
        )
        lines.append(
            f"| {row['clients']} | {row['qps']:.0f} | {row['p50_ms']:.2f} "
            f"| {row['p99_ms']:.2f} | {baseline_cells} |"
        )
    lines += [
        "",
        f"Peak speedup over the baseline's best point: "
        f"**{report['speedup']:.1f}x**"
        + (" (asserted ≥ 4x in full mode)." if not scale["smoke"] else "."),
        f"Response-cache hit ratio over the curve: "
        f"{report['cache_hit_ratio']:.2%}.",
        "",
        "## In-process reference",
        "",
        "| threads | q/s | p50 ms | p99 ms |",
        "|---|---|---|---|",
    ]
    for row in report["in_process"]:
        lines.append(
            f"| {row['clients']} | {row['qps']:.0f} | {row['p50_ms']:.2f} "
            f"| {row['p99_ms']:.2f} |"
        )
    churn = report["reads_under_upserts"]
    lines += [
        "",
        "## Concurrent-upsert reads",
        "",
        f"{churn['reads']} snapshot-consistent reads "
        f"({churn['reader_qps']:.0f}/sec across readers) while the writer "
        f"republished {churn['publishes']} generations "
        f"({churn['publishes_per_sec']:.1f} publishes/sec); "
        "0 consistency violations (asserted per read).",
        "",
    ]
    RESULTS_PATH.write_text("\n".join(lines))
    (RESULTS_DIR / "BENCH_serving.json").write_text(
        json.dumps(report, indent=2, sort_keys=True)
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="fast CI mode")
    parser.add_argument("--n-tuples", type=int, default=None)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="serving worker processes (default: 2 where fork exists)",
    )
    args = parser.parse_args(argv)

    n_tuples = args.n_tuples or (2_000 if args.smoke else 20_000)
    n_segments = 8 if args.smoke else 16
    n_queries = 2_000 if args.smoke else 8_000
    n_generations = 6 if args.smoke else 20
    workers = args.workers or (2 if hasattr(os, "fork") else 1)
    baseline_counts = (4,) if args.smoke else CLIENT_COUNTS

    with tempfile.TemporaryDirectory(prefix="bench-serving-") as tmp:
        tmp_path = Path(tmp)
        store = build_store(tmp_path / "kb", n_tuples, n_segments)
        snapshot = store.snapshot()
        print(
            f"KB: {snapshot.n_tuples} tuples, {len(snapshot.segments)} segments "
            f"(v{snapshot.version}), {workers} serving worker(s)"
        )

        report = {
            "scale": {
                "n_tuples": snapshot.n_tuples,
                "n_segments": n_segments,
                "n_queries_per_point": n_queries,
                "workers": workers,
                "smoke": args.smoke,
            }
        }

        report["in_process"] = [
            bench_in_process(store, n_queries, n_threads) for n_threads in (1, 4)
        ]
        for row in report["in_process"]:
            print(
                f"  in-process {row['clients']:>2} thread(s): {row['qps']:8.0f} q/s  "
                f"p50 {row['p50_ms']:6.2f} ms  p99 {row['p99_ms']:6.2f} ms"
            )

        report["baseline_curve"] = [
            bench_http_baseline(store, n_queries, n_clients)
            for n_clients in baseline_counts
        ]
        for row in report["baseline_curve"]:
            print(
                f"  baseline   {row['clients']:>2} client(s): {row['qps']:8.0f} q/s  "
                f"p50 {row['p50_ms']:6.2f} ms  p99 {row['p99_ms']:6.2f} ms"
            )

        # One server for the whole curve: a long-lived tier is the deployment
        # shape, and it lets the curve share a warm response cache the way
        # production traffic would.
        server = create_server(
            tmp_path / "kb", port=0, workers=workers, cache_entries=4096
        )
        server_thread = threading.Thread(target=server.serve_forever, daemon=True)
        server_thread.start()
        try:
            report["v1_curve"] = [
                bench_http_v1(server.url, n_queries, n_clients)
                for n_clients in CLIENT_COUNTS
            ]
            with KBClient(server.url) as client:
                metrics = client.metrics()
        finally:
            server.shutdown()
            server.server_close()
            server_thread.join(timeout=10)
        for row in report["v1_curve"]:
            print(
                f"  /v1        {row['clients']:>2} client(s): {row['qps']:8.0f} q/s  "
                f"p50 {row['p50_ms']:6.2f} ms  p99 {row['p99_ms']:6.2f} ms"
            )

        report["cache_hit_ratio"] = metrics["response_cache"]["hit_ratio"]
        best_v1 = max(row["qps"] for row in report["v1_curve"])
        best_baseline = max(row["qps"] for row in report["baseline_curve"])
        report["speedup"] = best_v1 / best_baseline
        print(
            f"  speedup: {report['speedup']:.1f}x over thread-per-request "
            f"(cache hit ratio {report['cache_hit_ratio']:.2%})"
        )

        p99_by_clients = {row["clients"]: row["p99_ms"] for row in report["v1_curve"]}
        if not args.smoke:
            assert report["speedup"] >= 4.0, (
                f"serving tier speedup {report['speedup']:.1f}x is below the 4x bar"
            )
            # "Non-degrading p99 to 64 clients": under 64-way fan-in the tail
            # must beat the replaced architecture head-to-head at the same
            # concurrency, and stay out of collapse territory outright.  (On
            # saturated hardware p99 necessarily grows with queue depth; what
            # must not happen is the super-linear blowup of per-request
            # connection setup + thread spawn.)
            baseline_p99_64 = next(
                row["p99_ms"] for row in report["baseline_curve"] if row["clients"] == 64
            )
            assert p99_by_clients[64] < baseline_p99_64, (
                f"/v1 p99 at 64 clients ({p99_by_clients[64]:.1f} ms) lost to the "
                f"thread-per-request baseline ({baseline_p99_64:.1f} ms)"
            )
            assert p99_by_clients[64] <= max(20 * p99_by_clients[4], 100.0), (
                f"p99 degraded under fan-in: {p99_by_clients}"
            )

        report["reads_under_upserts"] = bench_reads_under_upserts(
            tmp_path / "churn-kb",
            max(200, n_tuples // 10),
            n_segments,
            n_generations,
            4,
        )
        churn = report["reads_under_upserts"]
        print(
            f"  reads under upserts: {churn['reads']} consistent reads "
            f"({churn['reader_qps']:.0f}/s) across {churn['publishes']} publishes "
            f"— 0 violations"
        )

    write_results(report)
    print(f"\nWrote {RESULTS_PATH} and BENCH_serving.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
