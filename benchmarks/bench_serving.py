"""Serving-layer benchmark: queries/sec, tail latency, reads under upserts.

Exercises the three claims of the queryable KB store (docs/SERVING.md):

1. **Indexed lookups** — relation/doc/entity-ngram queries resolve through
   per-segment hash indexes; reported as queries/sec and p50/p99 latency for
   a mixed filter workload, in-process and over the stdlib HTTP endpoint.
2. **Concurrent serving** — the thread-per-request HTTP server under multiple
   client threads; aggregate queries/sec and p99.
3. **Snapshot-consistent reads under upserts** — reader threads hammer the
   store while a writer republishes generation after generation; every
   response must be internally consistent (one generation per response —
   verified, not assumed), and reader throughput during churn is reported.

Run standalone (CI runs ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]

Results land in ``benchmarks/results/serving.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path
from urllib.parse import urlencode

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.kb.query import KBQuery
from repro.kb.server import create_server
from repro.kb.store import KBStore

RESULTS_PATH = Path(__file__).parent / "results" / "serving.md"

RELATIONS = ("has_current", "has_voltage", "has_polarity")


def build_store(root: Path, n_tuples: int, n_segments: int, generation: int = 0) -> KBStore:
    """Publish a synthetic KB: ``n_tuples`` across ``n_segments`` shards."""
    rng = np.random.default_rng([7, generation])
    store = KBStore(root)
    update = store.begin_update()
    per_segment = max(1, n_tuples // n_segments)
    candidate = 0
    for position in range(n_segments):
        rows = []
        for _ in range(per_segment):
            doc = f"doc_{candidate % 97:04d}"
            rows.append(
                {
                    "relation": RELATIONS[candidate % len(RELATIONS)],
                    "doc_name": doc,
                    "doc_path": f"docs/{doc}.html",
                    "entities": [f"part-{candidate % 211:03x}", str(candidate % 500)],
                    "spans": [
                        ["part", f"sent:{candidate % 40}:0-1", f"part-{candidate % 211:03x}"]
                    ],
                    "marginal": float(round(0.5 + rng.random() / 2, 6)),
                    "candidate": candidate,
                }
            )
            candidate += 1
        update.upsert(position, f"shard-{position}", f"g{generation}-{position}", rows)
    update.publish(meta={"generation": generation})
    return store


def query_mix(i: int) -> KBQuery:
    """A deterministic rotation over the filter types the API serves."""
    kind = i % 4
    if kind == 0:
        return KBQuery(relation=RELATIONS[i % len(RELATIONS)], limit=20)
    if kind == 1:
        return KBQuery(doc=f"doc_{i % 97:04d}", limit=20)
    if kind == 2:
        return KBQuery(entity=f"part-{i % 211:03x}", limit=20)
    return KBQuery(min_marginal=0.9, offset=(i * 13) % 50, limit=20)


def percentile(latencies, q):
    return float(np.percentile(np.asarray(latencies), q) * 1000.0)


def bench_in_process(store: KBStore, n_queries: int, n_threads: int) -> dict:
    latencies = []
    lock = threading.Lock()

    def worker(offset: int) -> None:
        local = []
        for i in range(offset, n_queries, n_threads):
            begin = time.perf_counter()
            result = store.snapshot().query(query_mix(i))
            local.append(time.perf_counter() - begin)
            assert result.total >= 0
        with lock:
            latencies.extend(local)

    begin = time.perf_counter()
    threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - begin
    return {
        "qps": n_queries / elapsed,
        "p50_ms": percentile(latencies, 50),
        "p99_ms": percentile(latencies, 99),
    }


def bench_http(store: KBStore, n_queries: int, n_threads: int) -> dict:
    server = create_server(store.root, port=0, store=store)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    latencies = []
    lock = threading.Lock()

    def params_for(query: KBQuery) -> str:
        params = {
            key: value
            for key, value in (
                ("relation", query.relation),
                ("doc", query.doc),
                ("entity", query.entity),
                ("min_marginal", query.min_marginal),
                ("offset", query.offset or None),
                ("limit", query.limit),
            )
            if value is not None
        }
        return urlencode(params)

    def worker(offset: int) -> None:
        local = []
        for i in range(offset, n_queries, n_threads):
            url = f"{server.url}/query?{params_for(query_mix(i))}"
            begin = time.perf_counter()
            with urllib.request.urlopen(url, timeout=30) as response:
                payload = json.loads(response.read().decode("utf-8"))
            local.append(time.perf_counter() - begin)
            assert payload["total"] >= 0
        with lock:
            latencies.extend(local)

    try:
        begin = time.perf_counter()
        threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
        for worker_thread in threads:
            worker_thread.start()
        for worker_thread in threads:
            worker_thread.join()
        elapsed = time.perf_counter() - begin
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
    return {
        "qps": n_queries / elapsed,
        "p50_ms": percentile(latencies, 50),
        "p99_ms": percentile(latencies, 99),
    }


def bench_reads_under_upserts(
    root: Path, n_tuples: int, n_segments: int, n_generations: int, n_threads: int
) -> dict:
    """Readers race a republishing writer; consistency is asserted per read."""
    store = KBStore(root)
    reads = {"count": 0}
    violations = []
    lock = threading.Lock()
    done = threading.Event()

    def reader() -> None:
        count = 0
        try:
            while not done.is_set():
                snapshot = store.snapshot()
                result = snapshot.query(KBQuery(limit=200))
                generations = {
                    # Generation g publishes keys "g<g>-<position>".
                    record["key"].split("-")[0]
                    for record in snapshot.records
                }
                if len(generations) > 1:
                    with lock:
                        violations.append(f"mixed generations {generations}")
                if result.total != snapshot.n_tuples:
                    with lock:
                        violations.append("total != snapshot tuple count")
                count += 1
        except Exception as error:  # a dead reader must fail the bench, not
            with lock:  # silently vacate the consistency assertion
                violations.append(f"reader crashed: {type(error).__name__}: {error}")
        finally:
            with lock:
                reads["count"] += count

    threads = [threading.Thread(target=reader) for _ in range(n_threads)]
    begin = time.perf_counter()
    for thread in threads:
        thread.start()
    for generation in range(1, n_generations + 1):
        build_store(root, n_tuples, n_segments, generation=generation)
    elapsed = time.perf_counter() - begin
    done.set()
    for thread in threads:
        thread.join()
    if violations:
        raise AssertionError(
            f"{len(violations)} consistency violations, e.g. {violations[0]}"
        )
    return {
        "reads": reads["count"],
        "reader_qps": reads["count"] / elapsed,
        "publishes": n_generations,
        "publishes_per_sec": n_generations / elapsed,
    }


def write_results(report: dict) -> None:
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    scale = report["scale"]
    lines = [
        "# KB serving benchmark (`bench_serving.py`)",
        "",
        f"Store: {scale['n_tuples']} tuples across {scale['n_segments']} segments"
        f" ({'smoke' if scale['smoke'] else 'full'} mode).",
        "",
        "| workload | queries/sec | p50 ms | p99 ms |",
        "|---|---|---|---|",
    ]
    for name in ("in_process_1", "in_process_n", "http_1", "http_n"):
        row = report[name]
        lines.append(
            f"| {row['label']} | {row['qps']:.0f} | {row['p50_ms']:.2f} "
            f"| {row['p99_ms']:.2f} |"
        )
    churn = report["reads_under_upserts"]
    lines += [
        "",
        "## Concurrent-upsert reads",
        "",
        f"{churn['reads']} snapshot-consistent reads "
        f"({churn['reader_qps']:.0f}/sec across readers) while the writer "
        f"republished {churn['publishes']} generations "
        f"({churn['publishes_per_sec']:.1f} publishes/sec); "
        "0 consistency violations (asserted per read).",
        "",
    ]
    RESULTS_PATH.write_text("\n".join(lines))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="fast CI mode")
    parser.add_argument("--n-tuples", type=int, default=None)
    args = parser.parse_args(argv)

    n_tuples = args.n_tuples or (2_000 if args.smoke else 20_000)
    n_segments = 8 if args.smoke else 16
    n_queries = 400 if args.smoke else 4_000
    n_threads = 4
    n_generations = 6 if args.smoke else 20

    with tempfile.TemporaryDirectory(prefix="bench-serving-") as tmp:
        tmp_path = Path(tmp)
        store = build_store(tmp_path / "kb", n_tuples, n_segments)
        snapshot = store.snapshot()
        print(
            f"KB: {snapshot.n_tuples} tuples, {len(snapshot.segments)} segments "
            f"(v{snapshot.version})"
        )

        report = {
            "scale": {
                "n_tuples": snapshot.n_tuples,
                "n_segments": n_segments,
                "smoke": args.smoke,
            }
        }
        report["in_process_1"] = {
            "label": "in-process, 1 thread",
            **bench_in_process(store, n_queries, 1),
        }
        report["in_process_n"] = {
            "label": f"in-process, {n_threads} threads",
            **bench_in_process(store, n_queries, n_threads),
        }
        report["http_1"] = {"label": "HTTP, 1 client", **bench_http(store, n_queries, 1)}
        report["http_n"] = {
            "label": f"HTTP, {n_threads} clients",
            **bench_http(store, n_queries, n_threads),
        }
        for name in ("in_process_1", "in_process_n", "http_1", "http_n"):
            row = report[name]
            print(
                f"{row['label']:>22}: {row['qps']:8.0f} q/s  "
                f"p50 {row['p50_ms']:6.2f} ms  p99 {row['p99_ms']:6.2f} ms"
            )

        report["reads_under_upserts"] = bench_reads_under_upserts(
            tmp_path / "churn-kb",
            max(200, n_tuples // 10),
            n_segments,
            n_generations,
            n_threads,
        )
        churn = report["reads_under_upserts"]
        print(
            f"reads under upserts: {churn['reads']} consistent reads "
            f"({churn['reader_qps']:.0f}/s) across {churn['publishes']} publishes "
            f"— 0 violations"
        )

    write_results(report)
    print(f"\nWrote {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
