"""Hot-path microbenchmark: columnar DocumentIndex vs legacy object walks.

Measures docs-per-second of the three per-document hot stages —

* **extract**   — mention matching + scope-partitioned candidate formation
                  (+ throttlers, which call ``column_header_ngrams``),
* **featurize** — the multimodal feature library (mention cache enabled on
                  both paths; the index additionally memoizes traversal),
* **label**     — LF application (the LFs call ``row_ngrams`` et al.) plus
                  the generative label-model fit (vectorized vs per-LF EM),

once with the columnar index (``use_index=True``, the default) and once on
the legacy path, asserts both produce identical candidates, feature rows and
label-model marginals, and writes the comparison table to
``benchmarks/results/hotpaths.md``.

Run standalone (CI runs ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py [--smoke] [--n-docs N]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.candidates.extractor import CandidateExtractor
from repro.data_model.index import build_index, invalidate_index, traversal_mode
from repro.datasets import load_dataset
from repro.features.featurizer import FeatureConfig, Featurizer
from repro.supervision.label_model import LabelModel, LabelModelConfig
from repro.supervision.labeling import LFApplier

RESULTS_DIR = Path(__file__).parent / "results"
MARGINAL_ATOL = 1e-9


def _time_best(function: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """(best wall-clock seconds, last result) over ``repeats`` runs.

    One untimed warmup run precedes the timed ones (when repeating) so both
    paths are measured steady-state: interpreter caches, numpy dispatch and
    the index's memo tables are warm either way.
    """
    if repeats > 1:
        function()
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_path(dataset, documents, use_index: bool, repeats: int) -> Dict[str, object]:
    """Time the three hot stages on one path; returns timings + outputs."""
    matchers = {t: dataset.matchers[t] for t in dataset.schema.entity_types}

    def fresh_extractor():
        return CandidateExtractor(
            dataset.schema.name,
            matchers,
            throttlers=dataset.throttlers,
            use_index=use_index,
        )

    t_extract, extraction = _time_best(
        lambda: fresh_extractor().extract(documents), repeats
    )
    candidates = extraction.candidates

    def featurize():
        featurizer = Featurizer(FeatureConfig(use_index=use_index))
        return featurizer.feature_rows(candidates)

    t_featurize, rows = _time_best(featurize, repeats)

    applier = LFApplier(dataset.labeling_functions)

    def label():
        with traversal_mode(use_index):
            L = applier.apply_dense(candidates)
        model = LabelModel(LabelModelConfig(vectorized=use_index))
        return L, model.fit_predict_proba(L)

    t_label, (L, marginals) = _time_best(label, repeats)

    return {
        "extract": t_extract,
        "featurize": t_featurize,
        "label": t_label,
        "combined": t_extract + t_featurize + t_label,
        "extraction": extraction,
        "rows": rows,
        "L": L,
        "marginals": marginals,
    }


def check_equivalence(fast: Dict[str, object], legacy: Dict[str, object]) -> List[str]:
    """Assert both paths agree; returns human-readable check lines."""
    a, b = fast["extraction"], legacy["extraction"]
    assert [c.spans for c in a.candidates] == [c.spans for c in b.candidates]
    assert a.n_raw_candidates == b.n_raw_candidates
    assert a.n_throttled == b.n_throttled
    assert a.mentions_by_type == b.mentions_by_type
    assert fast["rows"] == legacy["rows"]
    assert np.array_equal(fast["L"], legacy["L"])
    marginal_diff = float(np.abs(fast["marginals"] - legacy["marginals"]).max()) \
        if len(fast["marginals"]) else 0.0
    assert np.allclose(
        fast["marginals"], legacy["marginals"], rtol=0.0, atol=MARGINAL_ATOL
    )
    return [
        f"- candidates: identical ({a.n_candidates} candidates, "
        f"{a.n_raw_candidates} raw, {a.n_throttled} throttled)",
        f"- feature rows: identical ({len(fast['rows'])} rows)",
        f"- label matrix: identical ({fast['L'].shape[0]}x{fast['L'].shape[1]})",
        f"- label-model marginals: max |diff| = {marginal_diff:.3g} "
        f"(tolerance {MARGINAL_ATOL})",
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny corpus / single repeat (CI anti-rot mode)")
    parser.add_argument("--n-docs", type=int, default=None,
                        help="corpus size (default 24; 6 with --smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats, best-of (default 5; 1 with --smoke)")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    n_docs = args.n_docs if args.n_docs is not None else (6 if args.smoke else 24)
    repeats = args.repeats if args.repeats is not None else (1 if args.smoke else 5)

    dataset = load_dataset("electronics", n_docs=n_docs, seed=args.seed)
    documents = dataset.parse_documents()

    # Both paths see identical pre-built per-document state: the index is
    # constructed at parse time (its build cost is part of Phase 1), and the
    # legacy path simply never reads it (traversal_mode(False)).
    t0 = time.perf_counter()
    for document in documents:
        invalidate_index(document)
        build_index(document)
    index_build_seconds = time.perf_counter() - t0

    with traversal_mode(False):
        legacy = run_path(dataset, documents, use_index=False, repeats=repeats)
    fast = run_path(dataset, documents, use_index=True, repeats=repeats)
    checks = check_equivalence(fast, legacy)

    stages = ["extract", "featurize", "label", "combined"]
    lines = [
        "## Hot-path microbenchmark: columnar DocumentIndex vs legacy object walks",
        "",
        f"ELECTRONICS corpus, {n_docs} documents, seed {args.seed}, "
        f"best of {repeats} run(s){' (smoke mode)' if args.smoke else ''}.",
        f"One-time index build for the whole corpus: {index_build_seconds * 1e3:.1f} ms "
        "(paid once at parse time, amortized across every stage below).",
        "",
        "| stage | legacy docs/s | indexed docs/s | speedup |",
        "|---|---|---|---|",
    ]
    for stage in stages:
        t_legacy, t_fast = legacy[stage], fast[stage]
        speedup = t_legacy / t_fast if t_fast > 0 else float("inf")
        lines.append(
            f"| {stage} | {n_docs / t_legacy:.1f} | {n_docs / t_fast:.1f} "
            f"| {speedup:.1f}x |"
        )
    lines += ["", "Equivalence checks (fast path vs legacy path):", ""]
    lines += checks
    lines.append("")

    content = "\n".join(lines)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "hotpaths.md").write_text(content)
    print(content)

    combined_speedup = legacy["combined"] / fast["combined"]
    if not args.smoke and combined_speedup < 3.0:
        print(f"WARNING: combined speedup {combined_speedup:.1f}x below the 3x target")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
