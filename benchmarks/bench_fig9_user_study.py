"""Figure 9 — user study: labeling functions vs manual annotation over 30 minutes.

Left plot: F1 over time for the two supervision approaches (simulated
annotators, see ``repro.userstudy``).  Right plot: the distribution of LF
modalities in the pool users draw from.  Expected shape: the LF arm labels far
more candidates than the manual arm and ends with the higher F1, and the
modality distribution is dominated by non-textual (tabular/structural/visual)
signals, as in the paper.
"""

from repro.candidates.extractor import CandidateExtractor
from repro.supervision.gold import gold_labels_for_candidates
from repro.userstudy.simulate import run_user_study

from common import dataset_for, format_table, matchers_of, once, report


def test_fig9_user_study(benchmark):
    # A corpus larger than the 30-minute manual-labeling budget, as in the paper.
    dataset = dataset_for("electronics", n_docs=36, seed=9)

    def run():
        extractor = CandidateExtractor(
            dataset.schema.name, matchers_of(dataset), throttlers=dataset.throttlers
        )
        candidates = extractor.extract(dataset.parse_documents()).candidates
        gold = gold_labels_for_candidates(candidates, dataset.corpus.gold_by_document())
        return run_user_study(
            dataset,
            candidates,
            gold,
            minutes=(5, 10, 15, 20, 25, 30),
            seed=1,
            manual_labels_per_minute=4,
        )

    study = once(benchmark, run)

    time_rows = [
        (checkpoint.minute, "LF", checkpoint.f1, checkpoint.n_labeled)
        for checkpoint in study.lf_checkpoints
    ] + [
        (checkpoint.minute, "Manual", checkpoint.f1, checkpoint.n_labeled)
        for checkpoint in study.manual_checkpoints
    ]
    modality_rows = sorted(study.lf_modality_distribution.items())
    content = format_table(
        "Figure 9 (left) — F1 over time, LF vs manual supervision (ELECTRONICS)",
        ["Minute", "Approach", "F1", "#Candidates labeled"],
        time_rows,
    ) + format_table(
        "Figure 9 (right) — modality distribution of the LF pool",
        ["Modality", "Fraction"],
        modality_rows,
    )
    report("fig9_user_study", content)

    assert study.lf_checkpoints[-1].n_labeled > study.manual_checkpoints[-1].n_labeled
    assert study.final_lf_f1 >= study.final_manual_f1
    assert study.lf_modality_distribution.get("textual", 0.0) < 0.5
