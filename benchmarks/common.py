"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper on the synthetic
corpora (see DESIGN.md §4).  Benchmarks are pytest-benchmark tests: the
``benchmark`` fixture times the interesting computation once (``pedantic`` with
a single round — these are end-to-end pipeline runs, not micro-benchmarks), and
the reproduced rows/series are both printed and written to
``benchmarks/results/<name>.md`` so they survive output capturing.
"""

from __future__ import annotations

import functools
from pathlib import Path
from typing import Dict, Iterable, Sequence

from repro.baselines.ensemble import EnsembleBaseline
from repro.baselines.table_ie import TableIEBaseline
from repro.baselines.text_ie import TextIEBaseline
from repro.candidates.extractor import CandidateExtractor
from repro.datasets import load_dataset
from repro.datasets.base import DatasetSpec
from repro.pipeline.config import FonduerConfig
from repro.pipeline.fonduer import FonduerPipeline, PipelineResult
from repro.supervision.gold import gold_labels_for_candidates

RESULTS_DIR = Path(__file__).parent / "results"

DOMAINS = ("electronics", "advertisements", "paleontology", "genomics")

# Corpus sizes are scaled down so the full harness runs on one CPU in minutes;
# the paper's corpora are listed in Table 1 and DESIGN.md.
DEFAULT_N_DOCS = 14
DEFAULT_SEED = 42


@functools.lru_cache(maxsize=None)
def dataset_for(domain: str, n_docs: int = DEFAULT_N_DOCS, seed: int = DEFAULT_SEED) -> DatasetSpec:
    """Build (and cache) one domain's dataset, with documents parsed."""
    dataset = load_dataset(domain, n_docs=n_docs, seed=seed)
    dataset.parse_documents()
    return dataset


def matchers_of(dataset: DatasetSpec) -> Dict[str, object]:
    return {t: dataset.matchers[t] for t in dataset.schema.entity_types}


def run_fonduer(dataset: DatasetSpec, config: FonduerConfig | None = None,
                labeling_functions=None) -> PipelineResult:
    """Run the end-to-end pipeline on a dataset with optional overrides."""
    pipeline = FonduerPipeline(
        schema=dataset.schema,
        matchers=dataset.matchers,
        labeling_functions=labeling_functions or dataset.labeling_functions,
        throttlers=dataset.throttlers,
        config=config or FonduerConfig(),
    )
    return pipeline.run(dataset.parse_documents(), gold=dataset.gold_entries)


def oracle_baselines(dataset: DatasetSpec) -> Dict[str, object]:
    """The three oracle baselines of Table 2 for a dataset."""
    matchers = matchers_of(dataset)
    return {
        "Text": TextIEBaseline(dataset.schema.name, matchers),
        "Table": TableIEBaseline(dataset.schema.name, matchers),
        "Ensemble": EnsembleBaseline(dataset.schema.name, matchers),
    }


def candidates_and_gold(dataset: DatasetSpec, throttled: bool = True):
    """Extract candidates for a dataset and compute their gold labels."""
    extractor = CandidateExtractor(
        dataset.schema.name,
        matchers_of(dataset),
        throttlers=dataset.throttlers if throttled else None,
    )
    candidates = extractor.extract(dataset.parse_documents()).candidates
    gold = gold_labels_for_candidates(candidates, dataset.corpus.gold_by_document())
    return candidates, gold


def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a small markdown table."""
    lines = [f"## {title}", "", "| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        formatted = [f"{v:.2f}" if isinstance(v, float) else str(v) for v in row]
        lines.append("| " + " | ".join(formatted) + " |")
    lines.append("")
    return "\n".join(lines)


def report(name: str, content: str) -> None:
    """Print the reproduced table/figure and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.md").write_text(content)
    print("\n" + content)


def once(benchmark, function):
    """Time ``function`` exactly once through pytest-benchmark and return its result."""
    return benchmark.pedantic(function, rounds=1, iterations=1)
