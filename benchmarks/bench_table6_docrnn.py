"""Table 6 — document-level RNN vs Fonduer's model on one ELECTRONICS relation.

The paper reports that learning a single document-wide representation is three
orders of magnitude slower per epoch and far less accurate than Fonduer's
approach of sentence-level Bi-LSTMs plus appended non-textual features.  On the
scaled-down corpus the absolute gap is smaller, but the shape holds: the
document-level RNN costs much more per epoch and reaches a lower F1.
"""

import numpy as np

from repro.evaluation.metrics import evaluate_binary
from repro.features.featurizer import Featurizer
from repro.learning.doc_rnn import DocumentRNN, DocumentRNNConfig
from repro.learning.multimodal_lstm import MultimodalLSTM, MultimodalLSTMConfig
from repro.supervision.label_model import LabelModel
from repro.supervision.labeling import LFApplier

from common import candidates_and_gold, dataset_for, format_table, once, report

_MAX_CANDIDATES = 60


def test_table6_document_rnn_vs_fonduer(benchmark):
    dataset = dataset_for("electronics", n_docs=8)

    def run():
        candidates, gold = candidates_and_gold(dataset)
        rng = np.random.default_rng(0)
        if len(candidates) > _MAX_CANDIDATES:
            keep = sorted(rng.choice(len(candidates), size=_MAX_CANDIDATES, replace=False))
            candidates = [candidates[i] for i in keep]
            gold = gold[keep]
        L = LFApplier(dataset.labeling_functions).apply_dense(candidates)
        marginals = LabelModel().fit_predict_proba(L)
        featurizer = Featurizer()
        rows = [{f: 1.0 for f in featurizer.features_for_candidate(c)} for c in candidates]

        fonduer_config = MultimodalLSTMConfig(
            embedding_dim=16, hidden_dim=10, attention_dim=10, n_epochs=3, max_sequence_length=16
        )
        fonduer = MultimodalLSTM(dataset.schema.arity, fonduer_config)
        fonduer.fit(candidates, rows, marginals)
        fonduer_f1 = evaluate_binary(fonduer.predict(candidates, rows), gold).f1

        doc_config = DocumentRNNConfig(
            embedding_dim=16, hidden_dim=10, attention_dim=10, n_epochs=1, max_document_length=500
        )
        doc_rnn = DocumentRNN(dataset.schema.arity, doc_config)
        doc_rnn.fit(candidates, marginals)
        doc_f1 = evaluate_binary(doc_rnn.predict(candidates), gold).f1

        return {
            "fonduer_secs_per_epoch": fonduer.stats.seconds_per_epoch,
            "fonduer_f1": fonduer_f1,
            "doc_secs_per_epoch": doc_rnn.stats.seconds_per_epoch,
            "doc_f1": doc_f1,
        }

    results = once(benchmark, run)
    report(
        "table6_docrnn",
        format_table(
            "Table 6 — document-level RNN vs Fonduer (one ELECTRONICS relation)",
            ["Learning model", "Runtime during training (secs/epoch)", "Quality (F1)"],
            [
                ("Document-level RNN", results["doc_secs_per_epoch"], results["doc_f1"]),
                ("Fonduer", results["fonduer_secs_per_epoch"], results["fonduer_f1"]),
            ],
        ),
    )
    assert results["doc_secs_per_epoch"] > results["fonduer_secs_per_epoch"]
    assert results["fonduer_f1"] >= results["doc_f1"]
