"""Table 3 — end-to-end quality vs. existing (expert-curated) knowledge bases.

The paper compares the ELECTRONICS output against Digi-Key's catalog and the
GENOMICS output against GWAS Central and GWAS Catalog, reporting KB sizes,
coverage, accuracy, new correct entries and the relative increase in correct
entries.  The curated KBs here are derived from the synthetic ground truth with
controlled incompleteness (see ``repro.datasets.existing_kbs``): Digi-Key-style
coverage is high, GWAS-style coverage is lower, matching the paper's setting
where Fonduer finds 1.4-1.9x the number of correct entries.
"""

import pytest

from repro.datasets.existing_kbs import build_existing_kb
from repro.evaluation.kb_compare import compare_knowledge_bases

from common import dataset_for, format_table, once, report, run_fonduer

# (domain, curated-KB name, fraction of the truth the curated KB covers)
_COMPARISONS = [
    ("electronics", "Digi-Key", 0.85),
    ("genomics", "GWAS Central", 0.55),
    ("genomics", "GWAS Catalog", 0.65),
]

_ROWS = []


@pytest.mark.parametrize("domain,kb_name,kb_coverage", _COMPARISONS)
def test_table3_existing_kb(benchmark, domain, kb_name, kb_coverage):
    dataset = dataset_for(domain)

    def run():
        result = run_fonduer(dataset)
        fonduer_tuples = {t for _, t in result.extracted_entries}
        truth = dataset.corpus.gold_tuples()
        existing = build_existing_kb(
            truth, coverage_of_truth=kb_coverage, foreign_fraction=0.05, seed=1
        )
        return compare_knowledge_bases(fonduer_tuples, existing, truth)

    comparison = once(benchmark, run)
    _ROWS.append(
        (
            domain,
            kb_name,
            comparison.n_existing_entries,
            comparison.n_fonduer_entries,
            comparison.coverage,
            comparison.accuracy,
            comparison.n_new_correct_entries,
            comparison.increase_in_correct_entries,
        )
    )

    # The paper's shape: high coverage of the curated KB plus new correct entries.
    assert comparison.coverage > 0.5
    assert comparison.n_new_correct_entries > 0
    assert comparison.increase_in_correct_entries > 1.0

    if len(_ROWS) == len(_COMPARISONS):
        report(
            "table3_existing_kbs",
            format_table(
                "Table 3 — comparison against existing knowledge bases",
                [
                    "Dataset",
                    "Knowledge base",
                    "#Entries in KB",
                    "#Entries in Fonduer",
                    "Coverage",
                    "Accuracy",
                    "New correct",
                    "Increase",
                ],
                _ROWS,
            ),
        )
