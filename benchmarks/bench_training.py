"""Training-runtime benchmark: in-memory vs streaming (slab-backed) Trainer.

Demonstrates the three claims of the unified learning runtime
(docs/LEARNING.md):

1. **Bounded residency** — mini-batch training over per-shard feature +
   marginal slabs (``SlabBatchSource``, ``max_resident`` shards' slabs in
   memory) completes on a corpus far larger than the resident capacity with
   peak RSS growth well below the in-memory trainer's, which concatenates the
   global CSR first.
2. **Byte-identical models** — the slab-backed trainer produces bitwise the
   same weights, bias and interning as the in-memory trainer on the same
   corpus and schedule (the batch sources yield identical batches).
3. **Epoch checkpoint/resume** — killing training at an epoch boundary and
   re-invoking resumes at that boundary and converges to the identical model.

Reported per mode: rows/sec and docs/sec of the training loop, plus each
forked child's ``ru_maxrss`` delta.  Run standalone (CI runs ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_training.py [--smoke] [--n-docs N]
"""

from __future__ import annotations

import argparse
import multiprocessing
import resource
import shutil
import sys
import tempfile
import time
from pathlib import Path
from queue import Empty

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets import load_dataset
from repro.learning.logistic import LogisticConfig, SparseLogisticRegression
from repro.learning.trainer import (
    InMemoryBatchSource,
    SlabBatchSource,
    Trainer,
    TrainerCheckpoint,
    TrainerConfig,
)
from repro.pipeline.config import FonduerConfig
from repro.pipeline.fonduer import FonduerPipeline
from repro.storage.shards import ShardStore, concat_feature_slabs

RESULTS_DIR = Path(__file__).parent / "results"

SHARD_SIZE = 4
MAX_RESIDENT = 2
N_EPOCHS = 10
BATCH_SIZE = 32
TRAINER_SEED = 3


class SimulatedKill(RuntimeError):
    """Raised from the epoch callback to model a mid-training process kill."""


def make_pipeline(dataset) -> FonduerPipeline:
    return FonduerPipeline(
        schema=dataset.schema,
        matchers=dataset.matchers,
        labeling_functions=dataset.labeling_functions,
        throttlers=dataset.throttlers,
        config=FonduerConfig(shard_size=SHARD_SIZE, max_resident_shards=MAX_RESIDENT),
    )


def prepare_slabs(dataset, workdir: str) -> None:
    """Materialize feature/marginal slabs by running the streaming pipeline."""
    make_pipeline(dataset).run_streaming(dataset.corpus.raw_documents, workdir)


def open_store(dataset, workdir: str):
    store = ShardStore(workdir, max_resident_shards=MAX_RESIDENT)
    shards = store.open_corpus(dataset.corpus.raw_documents, SHARD_SIZE)
    return store, shards


def trainer_config() -> TrainerConfig:
    return TrainerConfig(n_epochs=N_EPOCHS, batch_size=BATCH_SIZE, seed=TRAINER_SEED)


def _maxrss_kb() -> int:
    """Current high-water RSS of this process, in KiB (Linux ru_maxrss unit)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _measure_child(mode: str, seed: int, n_docs: int, workdir: str, queue) -> None:
    """Train one configuration in a fresh forked child and report its footprint.

    ``ru_maxrss`` is a monotone high-water mark, so the child samples it at
    entry (the inherited baseline) and reports the delta its own training
    added.  The in-memory child concatenates the global CSR + marginals first
    (what any resident-matrix caller must); the streaming child batches
    straight off the slabs with ``MAX_RESIDENT`` shards' slabs in memory.
    """
    rss_before = _maxrss_kb()
    dataset = load_dataset("electronics", n_docs=n_docs, seed=seed)
    store, shards = open_store(dataset, workdir)
    model = SparseLogisticRegression(LogisticConfig())
    start = time.perf_counter()
    if mode == "in-memory":
        features = concat_feature_slabs(
            store.load_feature_slab(shard) for shard in shards
        )
        marginals = np.concatenate(
            [store.load_marginal_slab(shard) for shard in shards]
        )
        source = InMemoryBatchSource(features, marginals)
    else:
        source = SlabBatchSource(
            store, shards, with_targets=True, max_resident=MAX_RESIDENT
        )
    stats = Trainer(trainer_config()).fit(model, source)
    seconds = time.perf_counter() - start
    n_rows = len(source)
    queue.put(
        {
            "mode": mode,
            "n_docs": n_docs,
            "n_rows": n_rows,
            "seconds": seconds,
            "rows_per_sec": n_rows * stats.n_epochs_run / seconds,
            "docs_per_sec": n_docs * stats.n_epochs_run / seconds,
            "rss_delta_kb": _maxrss_kb() - rss_before,
            "weights_sum": float(np.abs(model.weights).sum()),
            "bias": model.bias,
            "n_features": model.n_features,
        }
    )


def measure(mode: str, seed: int, n_docs: int, workdir: str) -> dict:
    context = multiprocessing.get_context("fork")
    queue = context.Queue()
    process = context.Process(
        target=_measure_child, args=(mode, seed, n_docs, workdir, queue)
    )
    process.start()
    try:
        measurement = queue.get(timeout=600)
    except Empty:
        process.terminate()
        process.join()
        raise RuntimeError(
            f"{mode} trainer child produced no result (exitcode {process.exitcode})"
        )
    process.join()
    return measurement


def check_model_equivalence(dataset, workdir: str) -> dict:
    """Claim 2: slab-backed and in-memory training are bitwise identical."""
    store, shards = open_store(dataset, workdir)
    features = concat_feature_slabs(store.load_feature_slab(shard) for shard in shards)
    marginals = np.concatenate([store.load_marginal_slab(shard) for shard in shards])

    memory_model = SparseLogisticRegression(LogisticConfig())
    Trainer(trainer_config()).fit(memory_model, InMemoryBatchSource(features, marginals))
    slab_model = SparseLogisticRegression(LogisticConfig())
    Trainer(trainer_config()).fit(
        slab_model,
        SlabBatchSource(store, shards, with_targets=True, max_resident=MAX_RESIDENT),
    )
    assert np.array_equal(memory_model.weights, slab_model.weights)
    assert memory_model.bias == slab_model.bias
    assert memory_model._feature_ids == slab_model._feature_ids
    assert np.array_equal(
        memory_model.predict_proba(features), slab_model.predict_proba(features)
    )
    return {"n_rows": features.n_rows, "n_features": memory_model.n_features}


def check_epoch_resume(dataset, workdir: str, checkpoint_dir: str) -> dict:
    """Claim 3: kill mid-training at an epoch boundary, resume, same model."""
    store, shards = open_store(dataset, workdir)
    features = concat_feature_slabs(store.load_feature_slab(shard) for shard in shards)
    marginals = np.concatenate([store.load_marginal_slab(shard) for shard in shards])
    reference = SparseLogisticRegression(LogisticConfig())
    Trainer(trainer_config()).fit(reference, InMemoryBatchSource(features, marginals))

    kill_after = N_EPOCHS // 2
    checkpoint = TrainerCheckpoint(Path(checkpoint_dir) / "model.pkl", key="bench")

    def killer(epoch, resumed):
        if not resumed and epoch == kill_after - 1:
            raise SimulatedKill(f"killed after epoch {epoch}")

    try:
        Trainer(trainer_config()).fit(
            SparseLogisticRegression(LogisticConfig()),
            InMemoryBatchSource(features, marginals),
            checkpoint=checkpoint,
            on_epoch=killer,
        )
        raise AssertionError("expected the simulated kill to fire")
    except SimulatedKill:
        pass
    resumed_model = SparseLogisticRegression(LogisticConfig())
    stats = Trainer(trainer_config()).fit(
        resumed_model, InMemoryBatchSource(features, marginals), checkpoint=checkpoint
    )
    assert stats.n_epochs_resumed == kill_after
    assert np.array_equal(resumed_model.weights, reference.weights)
    assert resumed_model.bias == reference.bias
    return {"killed_after": kill_after, "epochs_resumed": stats.n_epochs_resumed}


def write_results(path: Path, rows: list, extras: dict, smoke: bool) -> None:
    lines = [
        "# Training runtime: in-memory vs streaming (slab-backed) Trainer",
        "",
        f"Logistic head, {N_EPOCHS} epochs, batch_size={BATCH_SIZE}, "
        f"shard_size={SHARD_SIZE}, max_resident_shards={MAX_RESIDENT}"
        + (" — smoke run" if smoke else ""),
        "",
        "| trainer | docs | rows | rows/sec | docs/sec | peak RSS delta (KiB) |",
        "|---|---|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row['mode']} | {row['n_docs']} | {row['n_rows']} "
            f"| {row['rows_per_sec']:.0f} | {row['docs_per_sec']:.1f} "
            f"| {row['rss_delta_kb']} |"
        )
    lines += [
        "",
        f"Model equivalence: bitwise-identical weights over "
        f"{extras['equivalence']['n_rows']} rows × "
        f"{extras['equivalence']['n_features']} features.",
        f"Epoch resume: killed after epoch "
        f"{extras['resume']['killed_after'] - 1}, resumed "
        f"{extras['resume']['epochs_resumed']} epochs from the checkpoint, "
        f"bitwise-identical final model.",
        "",
    ]
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(lines))
    print("\n".join(lines))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast functional run for CI (small corpus, no RSS assertion)",
    )
    parser.add_argument(
        "--n-docs",
        type=int,
        default=None,
        help="corpus size (default 48; 16 with --smoke)",
    )
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args(argv)

    n_docs = args.n_docs or (16 if args.smoke else 48)
    dataset = load_dataset("electronics", n_docs=n_docs, seed=args.seed)
    workdir = tempfile.mkdtemp(prefix="bench-training-")
    checkpoint_dir = tempfile.mkdtemp(prefix="bench-training-ck-")
    try:
        print(f"Preparing slabs for {n_docs} documents ...")
        prepare_slabs(dataset, workdir)
        extras = {
            "equivalence": check_model_equivalence(dataset, workdir),
            "resume": check_epoch_resume(dataset, workdir, checkpoint_dir),
        }
        rows = [
            measure("in-memory", args.seed, n_docs, workdir),
            measure("streaming", args.seed, n_docs, workdir),
        ]
        # The two children trained the identical model (fork-isolated rerun of
        # the equivalence already asserted above).
        assert rows[0]["weights_sum"] == rows[1]["weights_sum"]
        assert rows[0]["bias"] == rows[1]["bias"]
        assert rows[0]["n_features"] == rows[1]["n_features"]
        write_results(RESULTS_DIR / "training.md", rows, extras, args.smoke)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
        shutil.rmtree(checkpoint_dir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
