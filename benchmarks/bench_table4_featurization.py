"""Table 4 — featurization study: human-tuned features vs Bi-LSTM-only vs Fonduer.

Three featurization approaches, everything else held constant:

* ``Human-tuned`` — sparse logistic regression over the full multimodal feature
  library (the feature-engineering workflow);
* ``Bi-LSTM w/ Attn.`` — Fonduer's sequence model with the extended feature
  library disabled (textual signal only);
* ``Fonduer`` — the multimodal LSTM (Bi-LSTM + extended features, jointly trained).

Expected shape (paper Table 4): Fonduer ≈ human-tuned, and both clearly ahead
of the textual-only Bi-LSTM.  An extra ablation row compares attention against
max pooling (a design choice called out in DESIGN.md §5).
"""

import numpy as np
import pytest

from repro.evaluation.metrics import evaluate_binary
from repro.features.featurizer import Featurizer
from repro.learning.logistic import SparseLogisticRegression
from repro.learning.multimodal_lstm import MultimodalLSTM, MultimodalLSTMConfig
from repro.supervision.label_model import LabelModel
from repro.supervision.labeling import LFApplier

from common import dataset_for, candidates_and_gold, format_table, once, report

_DOMAINS = ("electronics", "advertisements", "paleontology", "genomics")
_ROWS = []

_LSTM_CONFIG = dict(
    embedding_dim=16, hidden_dim=10, attention_dim=10, n_epochs=4, max_sequence_length=16
)
_MAX_CANDIDATES = 160


def _prepare(dataset):
    candidates, gold = candidates_and_gold(dataset)
    if len(candidates) > _MAX_CANDIDATES:
        rng = np.random.default_rng(0)
        keep = sorted(rng.choice(len(candidates), size=_MAX_CANDIDATES, replace=False))
        candidates = [candidates[i] for i in keep]
        gold = gold[keep]
    featurizer = Featurizer()
    rows = [{f: 1.0 for f in featurizer.features_for_candidate(c)} for c in candidates]
    L = LFApplier(dataset.labeling_functions).apply_dense(candidates)
    marginals = LabelModel().fit_predict_proba(L)
    rng = np.random.default_rng(1)
    order = rng.permutation(len(candidates))
    split = int(0.7 * len(candidates))
    return candidates, rows, gold, marginals, order[:split], order[split:]


def _f1(predictions, gold, test_index):
    return evaluate_binary(predictions[test_index], gold[test_index])


@pytest.mark.parametrize("domain", _DOMAINS)
def test_table4_featurization(benchmark, domain):
    dataset = dataset_for(domain, n_docs=8)

    def run():
        candidates, rows, gold, marginals, train, test = _prepare(dataset)
        results = {}

        # Human-tuned multimodal feature library + linear model.
        human = SparseLogisticRegression().fit([rows[i] for i in train], marginals[train])
        results["Human-tuned"] = _f1(human.predict(rows), gold, test)

        # Textual-only Bi-LSTM with attention.
        bilstm = MultimodalLSTM(dataset.schema.arity, MultimodalLSTMConfig(**_LSTM_CONFIG))
        bilstm.fit([candidates[i] for i in train], [{} for _ in train], marginals[train])
        bilstm_pred = bilstm.predict(candidates, [{} for _ in candidates])
        results["Bi-LSTM w/ Attn."] = _f1(bilstm_pred, gold, test)

        # Fonduer: Bi-LSTM + extended multimodal feature library.
        fonduer = MultimodalLSTM(dataset.schema.arity, MultimodalLSTMConfig(**_LSTM_CONFIG))
        fonduer.fit([candidates[i] for i in train], [rows[i] for i in train], marginals[train])
        results["Fonduer"] = _f1(fonduer.predict(candidates, rows), gold, test)

        # Ablation: attention replaced by max pooling (DESIGN.md §5).
        pooled_config = MultimodalLSTMConfig(use_attention=False, **_LSTM_CONFIG)
        pooled = MultimodalLSTM(dataset.schema.arity, pooled_config)
        pooled.fit([candidates[i] for i in train], [rows[i] for i in train], marginals[train])
        results["Fonduer (max-pool)"] = _f1(pooled.predict(candidates, rows), gold, test)
        return results

    results = once(benchmark, run)
    for system, metrics in results.items():
        _ROWS.append((domain, system, metrics.precision, metrics.recall, metrics.f1))

    # Shape: the multimodal approaches beat (or at worst match, within the noise
    # of these deliberately tiny models) the textual-only Bi-LSTM.
    tolerance = 0.0 if domain in ("paleontology", "genomics") else 0.15
    assert results["Fonduer"].f1 >= results["Bi-LSTM w/ Attn."].f1 - tolerance

    if len(_ROWS) == len(_DOMAINS) * 4:
        report(
            "table4_featurization",
            format_table(
                "Table 4 — featurization approaches (plus attention ablation)",
                ["Dataset", "System", "Prec.", "Rec.", "F1"],
                _ROWS,
            ),
        )
