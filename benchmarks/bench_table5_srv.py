"""Table 5 — SRV (HTML-only features) vs Fonduer on the ADVERTISEMENTS domain.

SRV-style extraction learns from structural + textual (HTML) features only;
Fonduer's feature library adds tabular grid and visual layout signals.  The
paper reports 2.3x higher F1 for Fonduer; the expected shape here is that the
full multimodal feature set is at least as good and usually clearly better.
"""

import numpy as np

from repro.baselines.srv import SRVBaseline
from repro.evaluation.metrics import evaluate_binary
from repro.features.featurizer import Featurizer
from repro.learning.logistic import SparseLogisticRegression
from repro.supervision.label_model import LabelModel
from repro.supervision.labeling import LFApplier

from common import candidates_and_gold, dataset_for, format_table, once, report


def test_table5_srv_vs_fonduer(benchmark):
    dataset = dataset_for("advertisements")

    def run():
        candidates, gold = candidates_and_gold(dataset)
        L = LFApplier(dataset.labeling_functions).apply_dense(candidates)
        marginals = LabelModel().fit_predict_proba(L)
        rng = np.random.default_rng(0)
        order = rng.permutation(len(candidates))
        split = int(0.7 * len(candidates))
        train, test = order[:split], order[split:]

        srv = SRVBaseline().fit([candidates[i] for i in train], marginals[train])
        srv_metrics = evaluate_binary(srv.predict(candidates)[test], gold[test])

        featurizer = Featurizer()
        rows = [{f: 1.0 for f in featurizer.features_for_candidate(c)} for c in candidates]
        full = SparseLogisticRegression().fit([rows[i] for i in train], marginals[train])
        full_metrics = evaluate_binary(full.predict(rows)[test], gold[test])
        return srv_metrics, full_metrics

    srv_metrics, full_metrics = once(benchmark, run)
    report(
        "table5_srv",
        format_table(
            "Table 5 — SRV vs Fonduer feature models (ADVERTISEMENTS)",
            ["Feature model", "Precision", "Recall", "F1"],
            [
                ("SRV", srv_metrics.precision, srv_metrics.recall, srv_metrics.f1),
                ("Fonduer", full_metrics.precision, full_metrics.recall, full_metrics.f1),
            ],
        ),
    )
    assert full_metrics.f1 >= srv_metrics.f1
