"""Appendix C.1 — mention-feature caching speed-up during featurization.

With document-level candidates, every mention participates in many candidates;
caching its unary features for the duration of the document avoids recomputing
them per candidate.  The paper reports >100x average speed-ups in ELECTRONICS;
the expected shape here is a clear (multi-x) speed-up with a high cache hit
rate, at modest memory cost (cache entries are per-mention, not per-candidate).

The paper's setting is *object-walking* featurization, so the cached/uncached
comparison runs on the legacy traversal path (``use_index=False``).  A third
row shows the columnar-index path (``docs/PERFORMANCE.md``) for context: the
index memoizes the underlying traversal per document, which subsumes most of
the mention cache's benefit — the modern reason the cache stays cheap to keep
on is that its keys are memoized stable-id tuples.
"""

import time

from repro.features.featurizer import FeatureConfig, Featurizer

from common import candidates_and_gold, dataset_for, format_table, once, report


def _featurize_time(candidates, config):
    featurizer = Featurizer(config)
    start = time.perf_counter()
    featurizer.featurize(candidates)
    return time.perf_counter() - start, featurizer


def test_appc1_mention_feature_caching(benchmark):
    dataset = dataset_for("electronics", n_docs=10)
    candidates, _ = candidates_and_gold(dataset, throttled=False)

    def run():
        cached_time, cached = _featurize_time(
            candidates, FeatureConfig(use_cache=True, use_index=False)
        )
        hit_rate = cached.cache.hit_rate
        uncached_time, _ = _featurize_time(
            candidates, FeatureConfig(use_cache=False, use_index=False)
        )
        indexed_time, _ = _featurize_time(
            candidates, FeatureConfig(use_cache=True, use_index=True)
        )
        return cached_time, uncached_time, indexed_time, hit_rate

    cached_time, uncached_time, indexed_time, hit_rate = once(benchmark, run)
    speed_up = uncached_time / cached_time if cached_time > 0 else float("inf")
    indexed_speed_up = uncached_time / indexed_time if indexed_time > 0 else float("inf")
    report(
        "appc1_caching",
        format_table(
            "Appendix C.1 — mention-feature caching (ELECTRONICS featurization)",
            ["Configuration", "Featurization time (s)", "Cache hit rate", "Speed-up"],
            [
                ("No caching (legacy traversal)", uncached_time, 0.0, 1.0),
                ("Document-level mention cache", cached_time, hit_rate, speed_up),
                ("Columnar index + mention cache", indexed_time, hit_rate, indexed_speed_up),
            ],
        ),
    )
    assert speed_up > 1.5
    assert hit_rate > 0.5
    assert indexed_speed_up > speed_up
