"""Appendix C.1 — mention-feature caching speed-up during featurization.

With document-level candidates, every mention participates in many candidates;
caching its unary features for the duration of the document avoids recomputing
them per candidate.  The paper reports >100x average speed-ups in ELECTRONICS;
the expected shape here is a clear (multi-x) speed-up with a high cache hit
rate, at modest memory cost (cache entries are per-mention, not per-candidate).
"""

import time

from repro.features.featurizer import FeatureConfig, Featurizer

from common import candidates_and_gold, dataset_for, format_table, once, report


def test_appc1_mention_feature_caching(benchmark):
    dataset = dataset_for("electronics", n_docs=10)
    candidates, _ = candidates_and_gold(dataset, throttled=False)

    def run():
        cached = Featurizer(FeatureConfig(use_cache=True))
        start = time.perf_counter()
        cached.featurize(candidates)
        cached_time = time.perf_counter() - start
        hit_rate = cached.cache.hit_rate

        uncached = Featurizer(FeatureConfig(use_cache=False))
        start = time.perf_counter()
        uncached.featurize(candidates)
        uncached_time = time.perf_counter() - start
        return cached_time, uncached_time, hit_rate

    cached_time, uncached_time, hit_rate = once(benchmark, run)
    speed_up = uncached_time / cached_time if cached_time > 0 else float("inf")
    report(
        "appc1_caching",
        format_table(
            "Appendix C.1 — mention-feature caching (ELECTRONICS featurization)",
            ["Configuration", "Featurization time (s)", "Cache hit rate", "Speed-up"],
            [
                ("No caching", uncached_time, 0.0, 1.0),
                ("Document-level mention cache", cached_time, hit_rate, speed_up),
            ],
        ),
    )
    assert speed_up > 1.5
    assert hit_rate > 0.5
