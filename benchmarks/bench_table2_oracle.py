"""Table 2 — end-to-end quality vs. the oracle upper bounds of prior approaches.

For each domain: precision/recall/F1 of the Text, Table and Ensemble oracles
(candidate-generation recall with assumed-perfect precision) and of the full
Fonduer pipeline.  Expected shape: Fonduer far ahead on the cross-context
domains (ELECTRONICS, PALEONTOLOGY, GENOMICS) and ahead-but-closer on
ADVERTISEMENTS, as in the paper.
"""

import pytest

from common import DOMAINS, dataset_for, format_table, once, oracle_baselines, report, run_fonduer

_RESULTS = {}


@pytest.mark.parametrize("domain", DOMAINS)
def test_table2_domain(benchmark, domain):
    dataset = dataset_for(domain)

    def run():
        rows = {}
        for name, baseline in oracle_baselines(dataset).items():
            metrics = baseline.evaluate_oracle(
                dataset.parse_documents(), dataset.gold_entries
            ).metrics
            rows[name] = metrics
        rows["Fonduer"] = run_fonduer(dataset).metrics
        return rows

    rows = once(benchmark, run)
    _RESULTS[domain] = rows

    # The paper's headline claim: Fonduer clearly beats the oracle upper bounds
    # on the cross-context domains; on ADVERTISEMENTS (Table 2) the Ensemble is
    # already strong and Fonduer's margin over it is small.
    if domain == "advertisements":
        assert rows["Fonduer"].f1 >= rows["Table"].f1 - 0.05
    else:
        assert rows["Fonduer"].f1 >= rows["Ensemble"].f1
        assert rows["Fonduer"].f1 > rows["Text"].f1

    if set(_RESULTS) == set(DOMAINS):
        table_rows = []
        for name in DOMAINS:
            for system in ("Text", "Table", "Ensemble", "Fonduer"):
                metrics = _RESULTS[name][system]
                table_rows.append((name, system, metrics.precision, metrics.recall, metrics.f1))
        report(
            "table2_oracle",
            format_table(
                "Table 2 — end-to-end quality vs. oracle upper bounds",
                ["Dataset", "System", "Prec.", "Rec.", "F1"],
                table_rows,
            ),
        )
