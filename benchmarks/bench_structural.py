"""Structural-query microbenchmark: interval encoding vs legacy ancestor walks.

Two measurements around the pre/post-order node table
(:mod:`repro.data_model.nodes`):

* **featurize (structural+tabular)** — rows-per-second of the structural and
  tabular feature families, once on the legacy object-walking path
  (``use_index=False``) and once on the interval fast path, asserting the
  emitted feature rows are byte-identical.  The acceptance target is a >= 2x
  speedup on the interval path.
* **KB ``within`` latency** — per-query latency of the structural containment
  filter over published span intervals, on the heap segment path (vectorized
  mask) and the mmap arena path (binary search over the sorted-``pre``
  column), against a plain ``doc``-filtered baseline.

Writes ``benchmarks/results/structural.md`` and the machine-readable
``benchmarks/results/BENCH_structural.json``.

Run standalone (CI runs ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_structural.py [--smoke] [--n-docs N]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.candidates.extractor import CandidateExtractor
from repro.data_model.index import build_index, invalidate_index, traversal_mode
from repro.data_model.nodes import node_table, span_interval
from repro.datasets import load_dataset
from repro.features.featurizer import FeatureConfig, Featurizer
from repro.kb.query import KBQuery
from repro.kb.store import KBStore

RESULTS_DIR = Path(__file__).parent / "results"
SPEEDUP_TARGET = 2.0


def _time_best(function: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """(best wall-clock seconds, last result); one untimed warmup when repeating."""
    if repeats > 1:
        function()
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_featurize(dataset, documents, candidates, repeats):
    """Structural+tabular featurization on both traversal paths."""

    def run(use_index):
        featurizer = Featurizer(
            FeatureConfig(
                textual=False, visual=False, structural=True, tabular=True,
                use_index=use_index,
            )
        )
        return featurizer.feature_rows(candidates)

    with traversal_mode(False):
        t_legacy, legacy_rows = _time_best(lambda: run(False), repeats)
    t_fast, fast_rows = _time_best(lambda: run(True), repeats)
    assert fast_rows == legacy_rows, "structural/tabular features diverged"
    return {
        "n_rows": len(fast_rows),
        "legacy_rows_per_s": len(legacy_rows) / t_legacy,
        "interval_rows_per_s": len(fast_rows) / t_fast,
        "speedup": t_legacy / t_fast if t_fast > 0 else float("inf"),
    }


def bench_within(dataset, documents, candidates, kb_root, repeats):
    """Publish the candidates' span intervals and time ``within`` queries."""
    rows = []
    for position, candidate in enumerate(candidates):
        document = candidate.spans[0].document
        rows.append(
            {
                "relation": dataset.schema.name,
                "doc_name": document.name,
                "doc_path": getattr(document, "path", "") or document.name,
                "entities": list(candidate.entity_tuple),
                "spans": [
                    [t, s.sentence.stable_id]
                    for t, s in zip(dataset.schema.entity_types, candidate.spans)
                ],
                "interval": list(span_interval(candidate.spans)),
                "marginal": 0.9,
                "candidate": position,
            }
        )
    store = KBStore(kb_root)
    update = store.begin_update()
    update.upsert(0, "bench-shard", "bench-key", rows)
    update.publish()

    # Query the densest document's subtree containers (table-level ranges).
    doc_name = max((r["doc_name"] for r in rows),
                   key=lambda n: sum(1 for r in rows if r["doc_name"] == n))
    document = next(d for d in documents if d.name == doc_name)
    table = node_table(document)
    containers = [table.interval(pre) for pre in range(len(table))
                  if table.subtree_end[pre] > pre][:16]
    queries = [
        KBQuery(doc=doc_name, within=f"{lo}-{hi}", limit=1000)
        for lo, hi in containers
    ]
    baseline = KBQuery(doc=doc_name, limit=1000)

    def timed(reader, query_list):
        snapshot = reader.snapshot()
        n_iters = 20 if repeats > 1 else 2
        start = time.perf_counter()
        total = 0
        for _ in range(n_iters):
            for query in query_list:
                total += snapshot.query(query).total
        return (time.perf_counter() - start) / (n_iters * len(query_list)), total

    heap = KBStore(kb_root)
    mmap_store = KBStore(kb_root, segment_mode="mmap")
    t_doc, _ = timed(heap, [baseline])
    t_heap, heap_total = timed(heap, queries)
    t_mmap, mmap_total = timed(mmap_store, queries)
    assert heap_total == mmap_total, "heap and arena within answers diverged"
    return {
        "n_tuples": len(rows),
        "n_container_queries": len(queries),
        "doc_filter_us": t_doc * 1e6,
        "within_heap_us": t_heap * 1e6,
        "within_mmap_us": t_mmap * 1e6,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny corpus / single repeat (CI anti-rot mode)")
    parser.add_argument("--n-docs", type=int, default=None,
                        help="corpus size (default 24; 6 with --smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats, best-of (default 5; 1 with --smoke)")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    n_docs = args.n_docs if args.n_docs is not None else (6 if args.smoke else 24)
    repeats = args.repeats if args.repeats is not None else (1 if args.smoke else 5)

    dataset = load_dataset("electronics", n_docs=n_docs, seed=args.seed)
    documents = dataset.parse_documents()
    for document in documents:
        invalidate_index(document)
        build_index(document)

    extractor = CandidateExtractor(
        dataset.schema.name,
        {t: dataset.matchers[t] for t in dataset.schema.entity_types},
        throttlers=dataset.throttlers,
    )
    candidates = extractor.extract(documents).candidates

    featurize = bench_featurize(dataset, documents, candidates, repeats)
    with tempfile.TemporaryDirectory() as tmp:
        within = bench_within(
            dataset, documents, candidates, Path(tmp) / "kb", repeats
        )

    lines = [
        "## Structural queries: pre/post interval encoding vs ancestor walks",
        "",
        f"ELECTRONICS corpus, {n_docs} documents, {featurize['n_rows']} candidates, "
        f"seed {args.seed}, best of {repeats} run(s)"
        f"{' (smoke mode)' if args.smoke else ''}.",
        "",
        "### Structural+tabular featurization",
        "",
        "| path | rows/s | speedup |",
        "|---|---|---|",
        f"| legacy object walks | {featurize['legacy_rows_per_s']:.0f} | 1.0x |",
        f"| interval encoding | {featurize['interval_rows_per_s']:.0f} "
        f"| {featurize['speedup']:.1f}x |",
        "",
        "Feature rows byte-identical across both paths.",
        "",
        "### KB `within` filter latency (per query)",
        "",
        f"{within['n_tuples']} published tuples, "
        f"{within['n_container_queries']} container intervals.",
        "",
        "| query | latency |",
        "|---|---|",
        f"| doc filter only (heap) | {within['doc_filter_us']:.0f} us |",
        f"| doc + within (heap, vectorized mask) | {within['within_heap_us']:.0f} us |",
        f"| doc + within (mmap arena, sorted-pre binary search) "
        f"| {within['within_mmap_us']:.0f} us |",
        "",
        "Heap and arena paths answered identical totals.",
        "",
    ]
    content = "\n".join(lines)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "structural.md").write_text(content)
    (RESULTS_DIR / "BENCH_structural.json").write_text(
        json.dumps(
            {
                "benchmark": "structural",
                "smoke": bool(args.smoke),
                "n_docs": n_docs,
                "seed": args.seed,
                "featurize": featurize,
                "within": within,
            },
            indent=2,
            sort_keys=True,
        )
    )
    print(content)

    if not args.smoke and featurize["speedup"] < SPEEDUP_TARGET:
        print(
            f"WARNING: structural+tabular speedup {featurize['speedup']:.1f}x "
            f"below the {SPEEDUP_TARGET:.0f}x target"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
