"""Out-of-core streaming benchmark: bounded memory on corpora that exceed RAM capacity.

Demonstrates the three claims of the sharded corpus store (docs/SCALING.md):

1. **Bounded residency** — a corpus ≥ 4× larger than the configured resident
   capacity (``shard_size × max_resident_shards`` documents) completes under
   streaming mode with peak RSS growth far below the in-memory path's, and
   roughly flat as the corpus doubles.  Each configuration runs in a forked
   child process and reports its own ``ru_maxrss`` delta.
2. **Byte-identical outputs** — the streaming run's marginals, feature CSR,
   label matrix and KB tuples equal the in-memory pipeline's on the same
   corpus and configuration.
3. **Kill + resume** — killing the run mid-way (at a shard × stage boundary)
   and re-invoking resumes from the checkpoint manifest and produces the same
   KB.

A third measurement row per corpus size, ``streaming-pool``, runs the same
streaming configuration through the persistent fork-once worker pool
(``executor="pool"``, workers capped at the core count) — the wall-clock gap
between streaming and in-memory execution is the pool's target
(docs/PERFORMANCE.md, "Shared-memory execution").

Run standalone (CI runs ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_shard_streaming.py [--smoke] [--n-docs N]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import resource
import shutil
import sys
import tempfile
import time
from pathlib import Path
from queue import Empty

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets import load_dataset
from repro.pipeline.config import FonduerConfig
from repro.pipeline.fonduer import FonduerPipeline
from repro.storage.sparse import CSRMatrix

RESULTS_DIR = Path(__file__).parent / "results"

SHARD_SIZE = 4
MAX_RESIDENT = 2
CAPACITY_DOCS = SHARD_SIZE * MAX_RESIDENT


class SimulatedKill(RuntimeError):
    """Raised from the progress callback to model a mid-run process kill."""


def make_pipeline(dataset, executor: str = "serial", n_workers: int = 1) -> FonduerPipeline:
    return FonduerPipeline(
        schema=dataset.schema,
        matchers=dataset.matchers,
        labeling_functions=dataset.labeling_functions,
        throttlers=dataset.throttlers,
        config=FonduerConfig(
            shard_size=SHARD_SIZE,
            max_resident_shards=MAX_RESIDENT,
            executor=executor,
            n_workers=n_workers,
        ),
    )


def pool_workers() -> int:
    """Worker count for the pooled streaming rows, capped at the core count."""
    return max(1, min(4, os.cpu_count() or 1))


def _maxrss_kb() -> int:
    """Current high-water RSS of this process, in KiB (Linux ru_maxrss unit)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _measure_child(mode: str, seed: int, n_docs: int, corpus_dir: str, queue) -> None:
    """Run one configuration in a fresh forked child and report its footprint.

    ``ru_maxrss`` is a monotone high-water mark, so the child samples it at
    entry (the inherited baseline) and reports the delta its own work added —
    the part that scales with corpus size and residency policy.  The
    streaming child consumes the corpus *directory* (the fully lazy path:
    raw text is re-read shard-by-shard, never all resident); the in-memory
    child materializes the corpus like any `run_from_raw` caller must.
    """
    rss_before = _maxrss_kb()
    start = time.perf_counter()
    if mode == "in-memory":
        dataset = load_dataset("electronics", n_docs=n_docs, seed=seed)
        pipeline = make_pipeline(dataset)
        result = pipeline.run_from_raw(
            dataset.corpus.raw_documents, gold=dataset.gold_entries
        )
        kb_size = result.kb.size()
    else:
        # The spec's user inputs (schema/matchers/LFs) are corpus-independent.
        spec = load_dataset("electronics", n_docs=2, seed=0)
        if mode == "streaming-pool":
            # The persistent fork-once pool drives the shard stages; worker
            # count capped at the core count (docs/PERFORMANCE.md).
            pipeline = make_pipeline(spec, executor="pool", n_workers=pool_workers())
        else:
            pipeline = make_pipeline(spec)
        workdir = tempfile.mkdtemp(prefix="bench-shard-")
        try:
            result = pipeline.run_streaming(corpus_dir, workdir)
            kb_size = result.kb.size()
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    queue.put(
        {
            "mode": mode,
            "n_docs": n_docs,
            "rss_delta_kb": _maxrss_kb() - rss_before,
            "seconds": time.perf_counter() - start,
            "kb_size": kb_size,
        }
    )


def measure(mode: str, seed: int, n_docs: int, corpus_dir: str) -> dict:
    context = multiprocessing.get_context("fork")
    queue = context.Queue()
    process = context.Process(
        target=_measure_child, args=(mode, seed, n_docs, corpus_dir, queue)
    )
    process.start()
    try:
        # Bounded wait: a child that dies (exception, OOM kill) before its
        # queue.put must surface as an error here, not hang the parent.
        measurement = queue.get(timeout=600)
    except Empty:
        process.terminate()
        process.join()
        raise RuntimeError(
            f"{mode} child for {n_docs} docs produced no result "
            f"(exitcode {process.exitcode})"
        )
    process.join()
    return measurement


def check_equivalence(dataset, workdir) -> dict:
    """Streaming vs in-memory byte identity on the benchmark corpus."""
    pipeline = make_pipeline(dataset)
    documents = pipeline.parse_documents(dataset.corpus.raw_documents)
    pipeline.generate_candidates(documents)
    feature_rows = pipeline.featurize()
    label_matrix = pipeline.apply_labeling_functions()
    reference = pipeline.run(
        documents, gold=dataset.gold_entries, reuse_candidates=True
    )
    reference_csr = CSRMatrix.from_rows(feature_rows)

    streaming = make_pipeline(dataset).run_streaming(
        dataset.corpus.raw_documents, workdir, gold=dataset.gold_entries
    )
    assert streaming.n_candidates == reference.n_candidates
    assert np.array_equal(streaming.features.indptr, reference_csr.indptr)
    assert np.array_equal(streaming.features.indices, reference_csr.indices)
    assert np.array_equal(streaming.features.data, reference_csr.data)
    assert streaming.features.column_names == reference_csr.column_names
    assert np.array_equal(streaming.label_matrix, label_matrix)
    assert np.array_equal(streaming.marginals, reference.marginals)
    assert streaming.extracted_entries == reference.extracted_entries
    assert sorted(streaming.kb.entries(dataset.schema.name)) == sorted(
        reference.kb.entries(dataset.schema.name)
    )
    return {
        "n_candidates": streaming.n_candidates,
        "kb_size": streaming.kb.size(),
        "n_shards": streaming.n_shards,
        "f1": streaming.metrics.f1 if streaming.metrics else float("nan"),
    }


def check_kill_resume(dataset, workdir) -> dict:
    """Kill mid-run at a shard × stage boundary, resume, compare the KB."""
    reference = make_pipeline(dataset).run_streaming(
        dataset.corpus.raw_documents, str(workdir) + "-reference"
    )
    n_boundaries = reference.n_computed
    kill_at = n_boundaries // 2
    seen = {"count": 0}

    def killer(event):
        seen["count"] += 1
        if seen["count"] >= kill_at:
            raise SimulatedKill(f"killed at boundary {kill_at}/{n_boundaries}")

    try:
        make_pipeline(dataset).run_streaming(
            dataset.corpus.raw_documents, workdir, progress=killer
        )
        raise AssertionError("expected the simulated kill to fire")
    except SimulatedKill:
        pass
    resumed = make_pipeline(dataset).run_streaming(
        dataset.corpus.raw_documents, workdir
    )
    assert resumed.n_resumed == kill_at
    assert np.array_equal(resumed.marginals, reference.marginals)
    assert sorted(resumed.kb.entries(dataset.schema.name)) == sorted(
        reference.kb.entries(dataset.schema.name)
    )
    shutil.rmtree(str(workdir) + "-reference", ignore_errors=True)
    return {
        "n_boundaries": n_boundaries,
        "killed_at": kill_at,
        "resumed": resumed.n_resumed,
        "recomputed": resumed.n_computed,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast functional run for CI (small corpus, no RSS assertion)",
    )
    parser.add_argument(
        "--n-docs",
        type=int,
        default=None,
        help=f"corpus size (default {CAPACITY_DOCS * 12}; {CAPACITY_DOCS * 2} with --smoke)",
    )
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args(argv)

    # The full run uses 12x the resident capacity (well past the required
    # >= 4x) so the footprint separation dominates interpreter noise; smoke
    # mode keeps CI fast with a 2x corpus and functional assertions only.
    n_docs = args.n_docs if args.n_docs is not None else (
        CAPACITY_DOCS * 2 if args.smoke else CAPACITY_DOCS * 12
    )
    corpus_sizes = [n_docs // 2, n_docs]

    cpu_count = os.cpu_count() or 1
    print(
        f"Shard streaming benchmark: shard_size={SHARD_SIZE}, "
        f"max_resident_shards={MAX_RESIDENT} "
        f"(resident capacity {CAPACITY_DOCS} docs), corpus {n_docs} docs "
        f"= {n_docs / CAPACITY_DOCS:.0f}x capacity, {cpu_count} cores "
        f"(pool rows use {pool_workers()} workers)"
    )

    # 1. Peak-RSS measurements, each in a fresh forked child.  Corpus
    # directories are materialized up front so the streaming children can
    # exercise the fully lazy read path.
    from repro.datasets.base import write_corpus_dir

    corpus_dirs = {}
    for size in corpus_sizes:
        corpus_dirs[size] = tempfile.mkdtemp(prefix=f"bench-corpus-{size}-")
        write_corpus_dir(
            load_dataset("electronics", n_docs=size, seed=args.seed).corpus,
            corpus_dirs[size],
        )
    measurements = []
    try:
        for size in corpus_sizes:
            for mode in ("in-memory", "streaming", "streaming-pool"):
                measurement = measure(mode, args.seed, size, corpus_dirs[size])
                measurements.append(measurement)
                print(
                    f"  {mode:>14} · {measurement['n_docs']:>3} docs: "
                    f"peak ΔRSS {measurement['rss_delta_kb'] / 1024:.1f} MiB, "
                    f"{measurement['seconds']:.1f}s, KB size {measurement['kb_size']}"
                )
    finally:
        for corpus_dir in corpus_dirs.values():
            shutil.rmtree(corpus_dir, ignore_errors=True)

    # 2 + 3. Equivalence and kill/resume on the full corpus, in-process.
    dataset = load_dataset("electronics", n_docs=n_docs, seed=args.seed)
    equivalence_dir = tempfile.mkdtemp(prefix="bench-shard-eq-")
    resume_dir = tempfile.mkdtemp(prefix="bench-shard-resume-")
    try:
        equivalence = check_equivalence(dataset, equivalence_dir)
        print(
            f"  equivalence: {equivalence['n_candidates']} candidates over "
            f"{equivalence['n_shards']} shards — streaming outputs byte-identical"
        )
        resume = check_kill_resume(dataset, resume_dir)
        print(
            f"  kill+resume: killed at boundary {resume['killed_at']}/"
            f"{resume['n_boundaries']}, resumed {resume['resumed']}, "
            f"recomputed {resume['recomputed']} — same KB"
        )
    finally:
        shutil.rmtree(equivalence_dir, ignore_errors=True)
        shutil.rmtree(resume_dir, ignore_errors=True)

    by_key = {(m["mode"], m["n_docs"]): m for m in measurements}
    inmem_full = by_key[("in-memory", n_docs)]
    stream_full = by_key[("streaming", n_docs)]
    stream_half = by_key[("streaming", n_docs // 2)]
    pool_full = by_key[("streaming-pool", n_docs)]
    rss_ratio = inmem_full["rss_delta_kb"] / max(stream_full["rss_delta_kb"], 1)
    growth = stream_full["rss_delta_kb"] / max(stream_half["rss_delta_kb"], 1)
    pool_wall_ratio = pool_full["seconds"] / max(inmem_full["seconds"], 1e-9)

    lines = [
        "# Out-of-core shard streaming",
        "",
        f"Corpus: ELECTRONICS, {n_docs} documents = "
        f"{n_docs / CAPACITY_DOCS:.0f}x the resident capacity "
        f"(shard_size={SHARD_SIZE} × max_resident_shards={MAX_RESIDENT} "
        f"= {CAPACITY_DOCS} docs) on {cpu_count} cores; streaming-pool uses "
        f"the persistent worker pool with {pool_workers()} workers.  "
        "Peak ΔRSS is each forked child's own "
        "`ru_maxrss` growth." + (" Smoke mode." if args.smoke else ""),
        "",
        "| mode | docs | peak ΔRSS (MiB) | wall (s) | KB entries |",
        "|---|---:|---:|---:|---:|",
    ]
    for m in measurements:
        lines.append(
            f"| {m['mode']} | {m['n_docs']} | {m['rss_delta_kb'] / 1024:.1f} "
            f"| {m['seconds']:.1f} | {m['kb_size']} |"
        )
    lines += [
        "",
        f"- in-memory / streaming peak ΔRSS at {n_docs} docs: **{rss_ratio:.1f}x**",
        f"- streaming ΔRSS growth, {n_docs // 2} → {n_docs} docs: "
        f"**{growth:.2f}x** (corpus doubled; residency bound unchanged)",
        f"- pooled streaming wall clock at {n_docs} docs: "
        f"**{pool_wall_ratio:.2f}x** the in-memory path's "
        f"({pool_full['seconds']:.1f}s vs {inmem_full['seconds']:.1f}s)",
        f"- equivalence: streaming outputs byte-identical to the in-memory "
        f"path ({equivalence['n_candidates']} candidates, "
        f"KB size {equivalence['kb_size']}, F1 {equivalence['f1']:.2f})",
        f"- kill+resume: killed at boundary {resume['killed_at']}/"
        f"{resume['n_boundaries']}; resume skipped {resume['resumed']} "
        f"checkpointed boundaries and produced the same KB",
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    output_path = RESULTS_DIR / "shard_streaming.md"
    output_path.write_text("\n".join(lines) + "\n")
    print(f"\nWrote {output_path}")

    payload = {
        "benchmark": "shard_streaming",
        "smoke": args.smoke,
        "cpu_count": cpu_count,
        "n_docs": n_docs,
        "shard_size": SHARD_SIZE,
        "max_resident_shards": MAX_RESIDENT,
        "pool_workers": pool_workers(),
        "rows": [
            {
                "mode": m["mode"],
                "n_docs": m["n_docs"],
                "rss_delta_kb": m["rss_delta_kb"],
                "seconds": round(m["seconds"], 3),
                "kb_size": m["kb_size"],
            }
            for m in measurements
        ],
        "rss_ratio_inmem_over_streaming": round(rss_ratio, 3),
        "streaming_rss_growth_on_doubling": round(growth, 3),
        "pool_wall_over_inmem": round(pool_wall_ratio, 3),
        "equivalence": equivalence,
        "kill_resume": resume,
    }
    json_path = RESULTS_DIR / "BENCH_shard_streaming.json"
    json_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"Wrote {json_path}")

    failures = []
    if not args.smoke and stream_full["rss_delta_kb"] >= inmem_full["rss_delta_kb"]:
        failures.append(
            "streaming peak RSS should be below the in-memory path's "
            f"({stream_full['rss_delta_kb']} KiB >= {inmem_full['rss_delta_kb']} KiB)"
        )
    # The pooled wall-clock gate needs the cores to hide the slab I/O behind
    # parallel stage work; on fewer cores the ratio is reported but not gated.
    if not args.smoke and cpu_count >= 4 and pool_wall_ratio > 2.5:
        failures.append(
            f"pooled streaming wall clock {pool_wall_ratio:.2f}x in-memory "
            f"exceeds the 2.5x ceiling on a {cpu_count}-core machine"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
