"""Figure 8 — impact of supervision modality on end-to-end quality.

For every domain the LF pool is partitioned into textual LFs and metadata LFs
(structural + tabular + visual), and the pipeline is trained with each subset
and with all LFs.  The paper's takeaway, reproduced as the assertion: metadata
LFs alone beat textual LFs alone on richly formatted data, and using both is at
least as good as metadata alone (up to noise).
"""

import pytest

from common import DOMAINS, dataset_for, format_table, once, report, run_fonduer

_RESULTS = {}


@pytest.mark.parametrize("domain", DOMAINS)
def test_fig8_supervision_ablation(benchmark, domain):
    dataset = dataset_for(domain)

    def run():
        scores = {}
        scores["All"] = run_fonduer(dataset).metrics.f1
        metadata = dataset.metadata_labeling_functions
        textual = dataset.textual_labeling_functions
        scores["Only Metadata"] = (
            run_fonduer(dataset, labeling_functions=metadata).metrics.f1 if metadata else 0.0
        )
        scores["Only Textual"] = (
            run_fonduer(dataset, labeling_functions=textual).metrics.f1 if textual else 0.0
        )
        return scores

    scores = once(benchmark, run)
    _RESULTS[domain] = scores

    # Expected shape (paper Figure 8): metadata LFs dominate textual LFs on the
    # table-heavy domains; on ADVERTISEMENTS both modalities contribute roughly
    # equally, so only the combined configuration is constrained there.
    if domain != "advertisements":
        assert scores["Only Metadata"] >= scores["Only Textual"]
    assert scores["All"] >= scores["Only Textual"] - 0.05

    if set(_RESULTS) == set(DOMAINS):
        rows = []
        for name in DOMAINS:
            for label in ("All", "Only Metadata", "Only Textual"):
                rows.append((name, label, _RESULTS[name][label]))
        report(
            "fig8_supervision_ablation",
            format_table(
                "Figure 8 — supervision-modality ablation (F1)",
                ["Dataset", "Labeling functions", "F1"],
                rows,
            ),
        )
