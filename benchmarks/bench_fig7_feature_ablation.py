"""Figure 7 — impact of each feature modality on end-to-end quality.

For every domain, the pipeline is run with all feature modalities enabled and
with each one disabled in turn ("No Textual", "No Structural", "No Tabular",
"No Visual").  The paper's takeaway, reproduced as the assertion: the
all-modalities configuration is never (meaningfully) beaten by an ablated one,
and at least one modality matters for each domain.
"""

import pytest

from repro.features.featurizer import FeatureConfig
from repro.pipeline.config import FonduerConfig

from common import DOMAINS, dataset_for, format_table, once, report, run_fonduer

_CONFIGS = [
    ("All", FeatureConfig()),
    ("No Textual", FeatureConfig.without("textual")),
    ("No Structural", FeatureConfig.without("structural")),
    ("No Tabular", FeatureConfig.without("tabular")),
    ("No Visual", FeatureConfig.without("visual")),
]

_RESULTS = {}


@pytest.mark.parametrize("domain", DOMAINS)
def test_fig7_feature_ablation(benchmark, domain):
    dataset = dataset_for(domain)

    def run():
        scores = {}
        for label, feature_config in _CONFIGS:
            result = run_fonduer(dataset, FonduerConfig(feature_config=feature_config))
            scores[label] = result.metrics.f1
        return scores

    scores = once(benchmark, run)
    _RESULTS[domain] = scores

    # The full feature set should not be meaningfully beaten by any ablation.
    assert scores["All"] >= max(v for k, v in scores.items() if k != "All") - 0.15

    if set(_RESULTS) == set(DOMAINS):
        rows = []
        for name in DOMAINS:
            for label, _ in _CONFIGS:
                rows.append((name, label, _RESULTS[name][label]))
        report(
            "fig7_feature_ablation",
            format_table(
                "Figure 7 — feature-modality ablation (F1)",
                ["Dataset", "Configuration", "F1"],
                rows,
            ),
        )
