"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so that editable
installs (``pip install -e .``) work in offline environments whose setuptools
predates built-in wheel support.
"""

from setuptools import setup

setup()
